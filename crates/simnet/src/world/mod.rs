//! The simulation world: nodes, radios, links and the event loop.
//!
//! [`World`] owns every node (with its [`NodeAgent`] behaviour), compiles
//! mobility plans, models discovery inquiries, connection establishment,
//! message transmission and link breakage, and advances virtual time through
//! a deterministic event loop. Agents act on the world through [`NodeCtx`].
//!
//! Internally the world is layered:
//!
//! * [`topology`] — node slots, positions and a uniform spatial [`grid`]
//!   index keyed by mobility-aware cell residency,
//! * [`discovery`] — inquiry sampling against grid candidates,
//! * [`links`] — the link table plus per-node link and per-link in-flight
//!   indexes, and
//! * [`delivery`] — message and disconnect ordering.
//!
//! The layering is an implementation detail: the public API and the event
//! semantics are identical to the original single-file world, and runs
//! reproduce byte-for-byte under the same seeds.

mod delivery;
mod discovery;
mod grid;
mod links;
pub mod partition;
pub mod shard;
mod topology;

#[cfg(test)]
mod adversary_tests;
#[cfg(test)]
mod faults_tests;
#[cfg(test)]
mod tests;

use std::collections::{BTreeMap, BTreeSet};

use self::links::LinkTable;
use self::topology::{NodeSlot, Topology};
use crate::adversary::{AdversaryAction, AdversaryEngine, AdversaryPlan, AdversaryStats, FrameForge};
use crate::event::Scheduler;
use crate::faults::{FaultAction, FaultEngine, FaultPlan, FaultStats, LifecycleEvent, LifecycleKind};
use crate::geometry::{Point, Rect};
use crate::link::{InFlightMessage, LinkInfo, PendingAttempt, QualityOverride};
use crate::metrics::Metrics;
use crate::mobility::MobilityModel;
use crate::node::{AttemptId, LinkId, NodeAgent, NodeId, TimerToken};
use crate::payload::Payload;
use crate::radio::{RadioEnvironment, RadioTech};
use crate::rng::SimRng;
use crate::telemetry::{Phase, Profiler, Telemetry, TelemetryConfig, PAYLOAD_SIZE_BOUNDS};
use crate::time::{SimDuration, SimTime};

/// Static configuration of a simulation world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; every stochastic decision derives from it.
    pub seed: u64,
    /// Radio technology profiles in force.
    pub radio: RadioEnvironment,
    /// Horizon up to which mobility plans are compiled. Position queries past
    /// the horizon return the final planned position.
    pub mobility_horizon: SimTime,
    /// How often established links are checked for coverage loss.
    pub link_check_interval: SimDuration,
    /// Areas without cellular coverage (the tunnel of Fig. 6.1). Only affects
    /// GPRS.
    pub gprs_dead_zones: Vec<Rect>,
    /// Side length in metres of the spatial index's grid cells. `None`
    /// (default) sizes cells to the smallest finite radio range, which keeps
    /// range queries to a handful of cells. Scenarios dominated by a
    /// longer-range technology can set this to that technology's range.
    pub grid_cell_m: Option<f64>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0,
            radio: RadioEnvironment::default(),
            mobility_horizon: SimTime::from_secs(4 * 3600),
            link_check_interval: SimDuration::from_millis(500),
            gprs_dead_zones: Vec::new(),
            grid_cell_m: None,
        }
    }
}

impl WorldConfig {
    /// A default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        WorldConfig {
            seed,
            ..WorldConfig::default()
        }
    }

    /// A configuration with ideal (fault-free, instant-setup) radios, for
    /// tests exercising middleware logic rather than radio behaviour.
    pub fn ideal(seed: u64) -> Self {
        WorldConfig {
            seed,
            radio: RadioEnvironment::ideal(),
            ..WorldConfig::default()
        }
    }

    /// The grid cell side the world will use: the explicit override if set,
    /// otherwise the smallest finite radio range (50 m when every configured
    /// technology has infrastructure coverage).
    fn resolved_grid_cell_m(&self) -> f64 {
        if let Some(cell) = self.grid_cell_m {
            return cell;
        }
        let min_range = RadioTech::ALL
            .iter()
            .filter_map(|t| self.radio.profile(*t).range_m)
            .fold(f64::INFINITY, f64::min);
        if min_range.is_finite() && min_range > 0.0 {
            min_range
        } else {
            50.0
        }
    }
}

/// Sending on a link can fail if the link no longer exists locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The link id is unknown.
    UnknownLink,
    /// The link has been closed.
    Closed,
    /// The sending node is not an endpoint of the link.
    NotEndpoint,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SendError::UnknownLink => "unknown link",
            SendError::Closed => "link closed",
            SendError::NotEndpoint => "node is not an endpoint of the link",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SendError {}

#[derive(Debug, Clone)]
enum Event {
    NodeStart(NodeId),
    Timer {
        node: NodeId,
        token: TimerToken,
        epoch: u64,
    },
    InquiryComplete {
        node: NodeId,
        tech: RadioTech,
        epoch: u64,
    },
    ConnectResolve {
        attempt: AttemptId,
    },
    Deliver {
        msg: u64,
    },
    LinkCheck {
        link: LinkId,
    },
    Disconnect {
        link: LinkId,
        closer: NodeId,
    },
    Fault {
        node: NodeId,
        idx: usize,
    },
    Adversary {
        idx: usize,
    },
}

/// The simulation world. See the crate-level documentation for an overview.
pub struct World {
    config: WorldConfig,
    now: SimTime,
    scheduler: Scheduler<Event>,
    topology: Topology,
    links: LinkTable,
    metrics: Metrics,
    faults: FaultEngine,
    adversary: AdversaryEngine,
    rng: SimRng,
    /// Reusable scratch buffer for grid candidate queries (behind a
    /// `RefCell` so read-only APIs keep `&self`). Every inquiry and
    /// neighbour lookup fills this one allocation instead of building a
    /// fresh candidate `Vec` — hot at 100k nodes.
    candidate_scratch: std::cell::RefCell<Vec<NodeId>>,
    /// Live telemetry recorder; `None` (the default) keeps the event loop
    /// free of sampling work. Behind a `Box` so the disabled case costs one
    /// pointer.
    telemetry: Option<Box<Telemetry>>,
    /// Per-phase wall-clock profiler; disabled (inert) by default.
    profiler: Profiler,
}

impl World {
    /// Creates a world from a configuration.
    pub fn new(config: WorldConfig) -> Self {
        let rng = SimRng::new(config.seed);
        let grid_cell_m = config.resolved_grid_cell_m();
        let faults = FaultEngine::new(config.seed);
        let adversary = AdversaryEngine::new(config.seed);
        World {
            config,
            now: SimTime::ZERO,
            scheduler: Scheduler::new(),
            topology: Topology::new(grid_cell_m),
            links: LinkTable::new(),
            metrics: Metrics::new(),
            faults,
            adversary,
            rng,
            candidate_scratch: std::cell::RefCell::new(Vec::new()),
            telemetry: None,
            profiler: Profiler::disabled(),
        }
    }

    /// Creates a world with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        World::new(WorldConfig::with_seed(seed))
    }

    /// Adds a node with the given behaviour. The agent's
    /// [`NodeAgent::on_start`] callback runs at the current simulation time
    /// once the event loop next advances.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        mobility: MobilityModel,
        techs: &[RadioTech],
        agent: Box<dyn NodeAgent>,
    ) -> NodeId {
        let id = NodeId::from_raw(self.topology.nodes.len() as u64);
        let mut node_rng = self.rng.derive(0x4E4F_4445_0000_0000 | id.as_raw());
        let plan = mobility.compile(self.config.mobility_horizon, &mut node_rng);
        let techs_set: BTreeSet<RadioTech> = techs.iter().copied().collect();
        self.topology.add(
            NodeSlot {
                id,
                name: name.into(),
                plan,
                discoverable: techs_set.clone(),
                techs: techs_set,
                inquiring_until: BTreeMap::new(),
                agent: Some(agent),
                rng: node_rng,
                alive: true,
                radio_off: BTreeSet::new(),
                epoch: 0,
            },
            self.now,
        );
        self.scheduler.schedule(self.now, Event::NodeStart(id));
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.topology.nodes.len()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.topology.nodes.iter().map(|n| n.id)
    }

    /// The human-readable name given to a node.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.slot(node).map(|s| s.name.as_str())
    }

    /// Whether a node is still powered on.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.slot(node).map(|s| s.alive).unwrap_or(false)
    }

    /// Position of a node at the current simulation time.
    pub fn position_of(&self, node: NodeId) -> Option<Point> {
        self.topology.position_of(node, self.now)
    }

    /// Distance in metres between two nodes at the current time.
    pub fn distance_between(&self, a: NodeId, b: NodeId) -> Option<f64> {
        Some(self.position_of(a)?.distance(self.position_of(b)?))
    }

    /// True if `a` and `b` can currently communicate over `tech`.
    pub fn in_range(&self, a: NodeId, b: NodeId, tech: RadioTech) -> bool {
        let (pa, pb) = match (self.position_of(a), self.position_of(b)) {
            (Some(pa), Some(pb)) => (pa, pb),
            _ => return false,
        };
        self.pair_in_range(pa, pb, tech)
    }

    pub(crate) fn pair_in_range(&self, pa: Point, pb: Point, tech: RadioTech) -> bool {
        if tech == RadioTech::Gprs {
            let dead = |p: Point| self.config.gprs_dead_zones.iter().any(|z| z.contains(p));
            return !dead(pa) && !dead(pb);
        }
        let profile = self.config.radio.profile(tech);
        profile.in_range(pa.distance(pb))
    }

    /// Side length in metres of the spatial index's grid cells in force.
    pub fn grid_cell_m(&self) -> f64 {
        self.topology.grid_cell_m()
    }

    /// Number of links still carried in the active link table (open or
    /// closed-but-draining). Closed links whose endpoints have been notified
    /// and whose in-flight payloads have drained are retired to compact
    /// tombstones and no longer counted here. Diagnostic for tests/benches.
    pub fn active_link_count(&self) -> usize {
        self.links.active_count()
    }

    /// Number of retired (fully closed and drained) links currently held as
    /// tombstones. Bounded on long churn runs: generation-based compaction
    /// reclaims a tombstone once both endpoints have crashed past the epochs
    /// recorded at retirement. Diagnostic for tests/benches.
    pub fn retired_link_count(&self) -> usize {
        self.links.retired_count()
    }

    /// Lifetime count of retired-link tombstones reclaimed by the
    /// generation-based compaction. Diagnostic for tests/benches.
    pub fn compacted_link_count(&self) -> u64 {
        self.links.compacted_count()
    }

    /// Snapshot of a link.
    pub fn link_info(&self, link: LinkId) -> Option<LinkInfo> {
        self.links.info(link)
    }

    /// Snapshots of every link (open or closed) that has `node` as an endpoint.
    pub fn links_of(&self, node: NodeId) -> Vec<LinkInfo> {
        self.links.infos_of(node)
    }

    /// Current quality of an open link, or `None` if the link is closed,
    /// unknown or out of range.
    pub fn link_quality(&mut self, link: LinkId) -> Option<u8> {
        let state = self.links.get(link)?;
        if !state.open {
            return None;
        }
        if let Some(ov) = state.quality_override {
            return Some(ov.value_at(self.now));
        }
        let (a, b, tech) = (state.a, state.b, state.tech);
        let distance = self.distance_between(a, b)?;
        if !self.pair_in_range(self.position_of(a)?, self.position_of(b)?, tech) {
            return None;
        }
        let profile = self.config.radio.profile(tech).clone();
        let slot = self.slot_mut(a)?;
        profile.sample_quality(distance, &mut slot.rng)
    }

    /// Installs an artificial quality override on a link (the thesis'
    /// "subtract 1 per second" simulation of §5.2.1). The link breaks once
    /// the override reaches zero.
    pub fn set_link_quality_override(&mut self, link: LinkId, initial: f64, decay_per_sec: f64) {
        let now = self.now;
        if let Some(state) = self.links.get_mut(link) {
            state.quality_override = Some(QualityOverride {
                set_at: now,
                initial,
                decay_per_sec,
            });
        }
    }

    /// Removes an artificial quality override.
    pub fn clear_link_quality_override(&mut self, link: LinkId) {
        if let Some(state) = self.links.get_mut(link) {
            state.quality_override = None;
        }
    }

    // ------------------------------------------------------------------
    // Fault injection (see the `faults` module)
    // ------------------------------------------------------------------

    /// Installs a deterministic fault schedule on a node. Scheduling is
    /// additive: a second plan for the same node extends the first. Actions
    /// dated before the current instant fire immediately when the event loop
    /// next advances. Plans for unknown nodes are ignored.
    pub fn install_fault_plan(&mut self, node: NodeId, plan: FaultPlan) {
        if self.topology.slot(node).is_none() || plan.is_empty() {
            return;
        }
        let now = self.now;
        for (at, idx) in self.faults.install(node, plan) {
            self.scheduler.schedule(at.max(now), Event::Fault { node, idx });
        }
    }

    /// Powers a previously crashed node back on: it re-enters the spatial
    /// index at its current planned position, becomes discoverable again and
    /// its agent is reborn through [`NodeAgent::on_restart`]. Timers,
    /// inquiries and connection attempts from before the crash stay dead
    /// (each life has its own epoch). No-op for alive or unknown nodes.
    ///
    /// # Panics
    ///
    /// Must not be called from inside an agent callback.
    pub fn restart_node(&mut self, node: NodeId) {
        match self.topology.slot(node) {
            Some(slot) if !slot.alive => {}
            _ => return,
        }
        let now = self.now;
        self.topology.power_on(node, now);
        self.faults.record(now, node, LifecycleKind::NodeUp);
        self.agent_call(node, |agent, ctx| agent.on_restart(ctx));
    }

    /// Per-technology airplane mode. Disabling a radio makes the node
    /// invisible to inquiries on `tech`, blocks new connections over it and
    /// breaks its open links on that technology immediately — both endpoints
    /// observe [`DisconnectReason::OutOfRange`](crate::node::DisconnectReason::OutOfRange),
    /// exactly as on a range loss, so the same recovery machinery fires.
    /// No-op when the node is unknown, does not carry `tech`, or is already
    /// in the requested state.
    ///
    /// # Panics
    ///
    /// Must not be called from inside an agent callback.
    pub fn set_radio_enabled(&mut self, node: NodeId, tech: RadioTech, enabled: bool) {
        let changed = match self.topology.slot_mut(node) {
            Some(slot) if slot.techs.contains(&tech) => {
                if enabled {
                    slot.radio_off.remove(&tech)
                } else {
                    slot.radio_off.insert(tech)
                }
            }
            _ => false,
        };
        if !changed {
            return;
        }
        let now = self.now;
        let kind = if enabled {
            LifecycleKind::RadioUp(tech)
        } else {
            LifecycleKind::RadioDown(tech)
        };
        self.faults.record(now, node, kind);
        if !enabled {
            self.break_links_on_tech(node, tech);
        }
    }

    /// True when the node is alive, carries `tech`, and the radio is not
    /// forced dark by a fault — i.e. the node can actually communicate over
    /// that technology right now.
    pub fn radio_enabled(&self, node: NodeId, tech: RadioTech) -> bool {
        self.slot(node)
            .map(|s| s.alive && s.techs.contains(&tech) && !s.radio_off.contains(&tech))
            .unwrap_or(false)
    }

    /// Aggregate fault-injection counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.faults.stats
    }

    /// The typed lifecycle stream recorded so far (crashes, restarts, radio
    /// transitions), in event order.
    pub fn lifecycle_events(&self) -> &[LifecycleEvent] {
        &self.faults.lifecycle
    }

    /// Drains and returns the recorded lifecycle stream. Long churn runs
    /// should drain periodically to keep memory flat.
    pub fn take_lifecycle_events(&mut self) -> Vec<LifecycleEvent> {
        std::mem::take(&mut self.faults.lifecycle)
    }

    fn apply_fault(&mut self, node: NodeId, idx: usize) {
        match self.faults.action(node, idx) {
            Some(FaultAction::NodeDown) => self.crash_node(node),
            Some(FaultAction::NodeUp) => self.restart_node(node),
            Some(FaultAction::RadioDown(tech)) => self.set_radio_enabled(node, tech, false),
            Some(FaultAction::RadioUp(tech)) => self.set_radio_enabled(node, tech, true),
            None => {}
        }
    }

    // ------------------------------------------------------------------
    // Adversarial faults (see the `adversary` module)
    // ------------------------------------------------------------------

    /// Installs an adversary schedule: partition windows and Byzantine
    /// compromises. Additive like fault plans; an empty plan is a no-op and
    /// leaves the world byte-identical to one without the subsystem.
    pub fn install_adversary_plan(&mut self, plan: AdversaryPlan) {
        if plan.is_empty() {
            return;
        }
        let now = self.now;
        for (at, idx) in self.adversary.install(plan) {
            self.scheduler.schedule(at.max(now), Event::Adversary { idx });
        }
    }

    /// Supplies the [`FrameForge`] that builds hostile payloads for
    /// compromised nodes. Without a forge, compromises still gate partition
    /// behaviour but tamper/inject/sniff are inert.
    pub fn set_frame_forge(&mut self, forge: Box<dyn FrameForge>) {
        self.adversary.forge = Some(forge);
    }

    /// Aggregate adversary counters.
    pub fn adversary_stats(&self) -> AdversaryStats {
        self.adversary.stats
    }

    /// True while an active partition window separates `a` from `b`.
    pub fn partitioned(&self, a: NodeId, b: NodeId) -> bool {
        self.adversary.has_partitions() && self.adversary.partitioned(a, b, self.now)
    }

    fn apply_adversary(&mut self, idx: usize) {
        match self.adversary.action(idx) {
            Some(AdversaryAction::PartitionStart(p)) => self.open_partition(p),
            Some(AdversaryAction::PartitionEnd) => {
                self.adversary.stats.partitions_healed += 1;
            }
            Some(AdversaryAction::Inject { node }) => self.inject_hostile_frame(node),
            None => {}
        }
    }

    /// A partition window opens: every open link spanning the cut breaks
    /// immediately, both endpoints observing
    /// [`DisconnectReason::OutOfRange`](crate::node::DisconnectReason::OutOfRange)
    /// — the same reason a coverage loss produces, so the ordinary recovery
    /// machinery (storage aging, handover, bridge re-routing) fires on both
    /// sides of the split brain.
    fn open_partition(&mut self, p: usize) {
        self.adversary.stats.partitions_started += 1;
        let Some(window) = self.adversary.partition_window(p) else {
            return;
        };
        let affected: Vec<(LinkId, NodeId, NodeId)> = self
            .links
            .open_link_endpoints()
            .into_iter()
            .filter(|&(_, a, b)| window.cuts(a, b))
            .collect();
        for (link, a, b) in affected {
            if let Some(state) = self.links.get_mut(link) {
                state.open = false;
            }
            self.adversary.stats.cut_links_broken += 1;
            self.metrics.record_link_broken(a);
            self.metrics.record_link_broken(b);
            self.agent_call(a, |agent, ctx| {
                agent.on_disconnected(ctx, link, b, crate::node::DisconnectReason::OutOfRange);
            });
            self.agent_call(b, |agent, ctx| {
                agent.on_disconnected(ctx, link, a, crate::node::DisconnectReason::OutOfRange);
            });
            self.retire_link_if_drained(link);
        }
    }

    /// One injection tick of a compromised node: pick one of its open links
    /// (adversary RNG), ask the forge for a hostile payload and put it on
    /// the air exactly like an honest send — same latency model, same
    /// metrics attribution to the attacker.
    fn inject_hostile_frame(&mut self, node: NodeId) {
        if !self.is_alive(node) || !self.adversary.is_compromised(node, self.now) {
            return;
        }
        let links = self.links.open_links_of(node);
        if links.is_empty() {
            return;
        }
        let pick = links[self.adversary.rng.index(links.len())];
        let (to, tech) = match self.links.get(pick) {
            Some(state) => match state.peer_of(node) {
                Some(peer) => (peer, state.tech),
                None => return,
            },
            None => return,
        };
        let Some(payload) = self.adversary.forge_injection(node, to) else {
            return;
        };
        let profile = self.config.radio.profile(tech);
        let delay = profile.transmission_delay(payload.len());
        self.metrics.record_message_sent(node, tech, payload.len() as u64);
        let msg = self.links.next_msg_id();
        self.adversary.mark_injected(msg);
        let deliver_at = self.now + delay;
        self.links.send_in_flight(
            msg,
            InFlightMessage {
                link: pick,
                from: node,
                to,
                payload,
                deliver_at,
            },
        );
        self.scheduler.schedule(deliver_at, Event::Deliver { msg });
    }

    /// Runs the event loop until simulation time `deadline` and then sets the
    /// clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((time, event)) = self.scheduler.pop_due(deadline) {
            self.now = self.now.max(time);
            self.dispatch(event);
        }
        self.now = self.now.max(deadline);
        if self.telemetry.is_some() {
            self.sample_telemetry();
        }
    }

    /// Runs for a further span of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    /// Runs until no events remain or `limit` is reached, returning the time
    /// at which the loop stopped.
    pub fn run_until_idle(&mut self, limit: SimTime) -> SimTime {
        while let Some((time, event)) = self.scheduler.pop_due(limit) {
            self.now = self.now.max(time);
            self.dispatch(event);
        }
        if self.scheduler.peek_time().is_none() {
            self.now
        } else {
            self.now = self.now.max(limit);
            self.now
        }
    }

    /// One event through the instrumentation shell: profile the handling
    /// wall time by phase, then check the telemetry sample boundary. With
    /// both tools off (the default) this adds two predictable branches and
    /// nothing else; the event semantics are untouched either way.
    fn dispatch(&mut self, event: Event) {
        if self.profiler.is_enabled() {
            let phase = phase_of(&event);
            let span = self.profiler.begin();
            self.handle(event);
            self.profiler.end(phase, span);
        } else {
            self.handle(event);
        }
        if self.telemetry.is_some() {
            self.sample_telemetry();
        }
    }

    /// Gives typed access to a node's agent together with a [`NodeCtx`], so
    /// scenario drivers can invoke application-level operations ("connect to
    /// that service now") between event-loop runs.
    ///
    /// Returns `None` if the node does not exist, is powered off, or its
    /// agent is not of type `A`.
    pub fn with_agent<A, R>(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut NodeCtx<'_>) -> R) -> Option<R>
    where
        A: NodeAgent + 'static,
    {
        let idx = node.as_raw() as usize;
        if idx >= self.topology.nodes.len() || !self.topology.nodes[idx].alive {
            return None;
        }
        let mut agent = self.topology.nodes[idx].agent.take()?;
        let result = {
            let mut ctx = NodeCtx { world: self, node };
            agent.as_any_mut().downcast_mut::<A>().map(|typed| f(typed, &mut ctx))
        };
        self.topology.nodes[idx].agent = Some(agent);
        result
    }

    fn slot(&self, node: NodeId) -> Option<&NodeSlot> {
        self.topology.slot(node)
    }

    fn slot_mut(&mut self, node: NodeId) -> Option<&mut NodeSlot> {
        self.topology.slot_mut(node)
    }

    fn agent_call<R>(&mut self, node: NodeId, f: impl FnOnce(&mut dyn NodeAgent, &mut NodeCtx<'_>) -> R) -> Option<R> {
        let idx = node.as_raw() as usize;
        if idx >= self.topology.nodes.len() || !self.topology.nodes[idx].alive {
            return None;
        }
        let mut agent = self.topology.nodes[idx].agent.take()?;
        let result = {
            let mut ctx = NodeCtx { world: self, node };
            f(agent.as_mut(), &mut ctx)
        };
        self.topology.nodes[idx].agent = Some(agent);
        Some(result)
    }

    /// True when the node's epoch still matches `epoch` — i.e. the event was
    /// scheduled in the node's current life.
    fn epoch_current(&self, node: NodeId, epoch: u64) -> bool {
        self.slot(node).map(|s| s.epoch == epoch).unwrap_or(false)
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::NodeStart(node) => {
                self.agent_call(node, |agent, ctx| agent.on_start(ctx));
            }
            Event::Timer { node, token, epoch } => {
                if self.epoch_current(node, epoch) {
                    self.agent_call(node, |agent, ctx| agent.on_timer(ctx, token));
                }
            }
            Event::InquiryComplete { node, tech, epoch } => {
                if self.epoch_current(node, epoch) {
                    self.complete_inquiry(node, tech);
                }
            }
            Event::ConnectResolve { attempt } => self.resolve_attempt(attempt),
            Event::Deliver { msg } => self.deliver(msg),
            Event::LinkCheck { link } => self.check_link(link),
            Event::Disconnect { link, closer } => self.graceful_disconnect(link, closer),
            Event::Fault { node, idx } => self.apply_fault(node, idx),
            Event::Adversary { idx } => self.apply_adversary(idx),
        }
    }

    // ------------------------------------------------------------------
    // Telemetry and profiling (see the `telemetry` module)
    // ------------------------------------------------------------------

    /// Turns on the live telemetry plane: from now on the event loop
    /// snapshots the world's aggregate series every
    /// [`TelemetryConfig::sample_interval`] of virtual time. Telemetry draws
    /// no randomness and changes no event — a run records identically with
    /// it on or off.
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        self.telemetry = Some(Box::new(Telemetry::new(config)));
    }

    /// The telemetry recorder, if enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Mutable access to the recorder — scenario drivers use this to export
    /// their own gauges (resilience breaker state, handover counts) and to
    /// install the live-watch frame callback.
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Detaches and returns the recorder (turning telemetry off).
    pub fn take_telemetry(&mut self) -> Option<Box<Telemetry>> {
        self.telemetry.take()
    }

    /// Turns on per-phase wall-clock profiling of the event loop.
    pub fn enable_profiling(&mut self) {
        self.profiler = Profiler::enabled();
    }

    /// The per-phase profiler (inert unless [`World::enable_profiling`] ran).
    pub fn profiler(&self) -> &Profiler {
        &self.profiler
    }

    /// Number of nodes currently powered on (telemetry gauge / diagnostic).
    pub fn alive_count(&self) -> usize {
        self.topology.nodes.iter().filter(|n| n.alive).count()
    }

    /// Number of currently open links (telemetry gauge / diagnostic).
    pub fn open_link_count(&self) -> usize {
        self.links.open_count()
    }

    /// Mirrors the engine's aggregate state into the recorder and emits a
    /// frame when virtual time has crossed a sample boundary. Counters are
    /// copied from the already-maintained [`Metrics`] store, so sampling
    /// reads state instead of instrumenting every hot-path record call.
    fn sample_telemetry(&mut self) {
        let due = self.telemetry.as_ref().map(|t| t.due(self.now)).unwrap_or(false);
        if !due {
            return;
        }
        let alive = self.alive_count() as f64;
        let open_links = self.links.open_count() as f64;
        let global = *self.metrics.global();
        let fault_stats = self.faults.stats;
        let per_tech: Vec<(RadioTech, u64, u64)> = RadioTech::ALL
            .iter()
            .map(|&t| (t, self.metrics.messages_for_tech(t), self.metrics.bytes_for_tech(t)))
            .filter(|&(_, msgs, bytes)| msgs > 0 || bytes > 0)
            .collect();
        let now = self.now;
        let tel = self.telemetry.as_mut().expect("checked above");
        tel.set_gauge("world", "nodes_alive", None, alive);
        tel.set_gauge("world", "links_open", None, open_links);
        tel.set_counter("world", "inquiries_started", None, global.inquiries_started);
        tel.set_counter("world", "inquiry_hits", None, global.inquiry_hits);
        tel.set_counter("world", "connect_attempts", None, global.connect_attempts);
        tel.set_counter("world", "connects_established", None, global.connects_established);
        tel.set_counter("world", "connect_failures", None, global.connect_failures);
        tel.set_counter("world", "messages_sent", None, global.messages_sent);
        tel.set_counter("world", "messages_delivered", None, global.messages_delivered);
        tel.set_counter("world", "messages_lost", None, global.messages_lost);
        tel.set_counter("world", "bytes_sent", None, global.bytes_sent);
        tel.set_counter("world", "links_broken", None, global.links_broken);
        tel.set_gauge("world", "delivery_rate", None, global.delivery_rate());
        tel.set_counter("faults", "node_crashes", None, fault_stats.crashes);
        tel.set_counter("faults", "node_restarts", None, fault_stats.restarts);
        tel.set_counter("faults", "radio_outages", None, fault_stats.radio_outages);
        if self.adversary.installed() {
            // Only adversarial worlds carry the series: plan-free runs keep
            // their telemetry streams (and digests) untouched.
            let adv = self.adversary.stats;
            tel.set_counter("adversary", "frames_injected", None, adv.frames_injected);
            tel.set_counter("adversary", "frames_tampered", None, adv.frames_tampered);
            tel.set_counter("adversary", "partition_drops", None, adv.partition_drops);
            tel.set_counter("adversary", "cut_links_broken", None, adv.cut_links_broken);
            tel.set_gauge(
                "adversary",
                "partitions_active",
                None,
                self.adversary.partitions_active_at(now) as f64,
            );
        }
        for (tech, msgs, bytes) in per_tech {
            let label = tech.short_name();
            tel.set_counter("world", "messages_sent_tech", Some(label), msgs);
            tel.set_counter("world", "bytes_sent_tech", Some(label), bytes);
        }
        tel.sample(now);
    }
}

/// The profiling phase an event's handling is attributed to.
fn phase_of(event: &Event) -> Phase {
    match event {
        Event::NodeStart(_) => Phase::AgentStart,
        Event::Timer { .. } => Phase::Timers,
        Event::InquiryComplete { .. } => Phase::Discovery,
        Event::ConnectResolve { .. } => Phase::Connect,
        Event::Deliver { .. } => Phase::Delivery,
        Event::LinkCheck { .. } => Phase::LinkCheck,
        Event::Disconnect { .. } => Phase::Disconnect,
        Event::Fault { .. } => Phase::Faults,
        Event::Adversary { .. } => Phase::Faults,
    }
}

/// Handle through which an agent (or a scenario driver holding
/// [`World::with_agent`]) acts on the world on behalf of one node.
pub struct NodeCtx<'a> {
    world: &'a mut World,
    node: NodeId,
}

impl<'a> NodeCtx<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The node this context acts for.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current position of this node.
    pub fn position(&self) -> Point {
        self.world.position_of(self.node).unwrap_or(Point::ORIGIN)
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self
            .world
            .slot_mut(self.node)
            .expect("node exists while ctx is alive")
            .rng
    }

    /// Schedules a timer that will fire `after` from now with the given
    /// opaque token. The timer dies with the node's current life: after a
    /// crash and restart it never fires.
    pub fn schedule(&mut self, after: SimDuration, token: TimerToken) {
        let at = self.world.now + after;
        let epoch = self.world.slot(self.node).map(|s| s.epoch).unwrap_or(0);
        self.world.scheduler.schedule(
            at,
            Event::Timer {
                node: self.node,
                token,
                epoch,
            },
        );
    }

    /// Starts a device-discovery inquiry on `tech`. The result arrives via
    /// [`NodeAgent::on_inquiry_complete`] after the technology's inquiry
    /// duration. While scanning, a Bluetooth device is not discoverable by
    /// others (the asymmetry of §3.4.2).
    pub fn start_inquiry(&mut self, tech: RadioTech) {
        let duration = self.world.config.radio.profile(tech).inquiry_duration;
        let node = self.node;
        let finish = self.world.now + duration;
        let epoch = match self.world.slot_mut(node) {
            Some(slot) => {
                if !slot.techs.contains(&tech) {
                    return;
                }
                let entry = slot.inquiring_until.entry(tech).or_insert(finish);
                *entry = (*entry).max(finish);
                slot.epoch
            }
            None => return,
        };
        self.world.metrics.record_inquiry_started(node);
        self.world
            .scheduler
            .schedule(finish, Event::InquiryComplete { node, tech, epoch });
    }

    /// Controls whether this node answers discovery inquiries on `tech`.
    pub fn set_discoverable(&mut self, tech: RadioTech, discoverable: bool) {
        let node = self.node;
        if let Some(slot) = self.world.slot_mut(node) {
            if discoverable {
                if slot.techs.contains(&tech) {
                    slot.discoverable.insert(tech);
                }
            } else {
                slot.discoverable.remove(&tech);
            }
        }
    }

    /// Initiates a connection to `peer` over `tech`. Resolution (success or
    /// failure) is reported asynchronously through
    /// [`NodeAgent::on_connected`] / [`NodeAgent::on_connect_failed`] after a
    /// technology-dependent setup latency.
    pub fn connect(&mut self, peer: NodeId, tech: RadioTech) -> AttemptId {
        let id = self.world.links.next_attempt_id();
        let node = self.node;
        self.world.metrics.record_connect_attempt(node);
        let profile = self.world.config.radio.profile(tech).clone();
        let (latency, epoch) = {
            let slot = self.world.slot_mut(node).expect("node exists while ctx is alive");
            (profile.sample_setup_latency(&mut slot.rng), slot.epoch)
        };
        self.world.links.attempts.insert(
            id,
            PendingAttempt {
                id,
                from: node,
                to: peer,
                tech,
                started_at: self.world.now,
                epoch,
            },
        );
        let resolve_at = self.world.now + latency;
        self.world
            .scheduler
            .schedule(resolve_at, Event::ConnectResolve { attempt: id });
        id
    }

    /// Sends a payload over an open link. Delivery is asynchronous; if the
    /// link breaks while the payload is in flight the message is silently
    /// lost (the data-loss risk §6.1 points out for the original `Write`).
    ///
    /// Accepts anything convertible into a shared [`Payload`] — pass a
    /// `Payload` clone to fan one encoded frame out to many links without
    /// copying the bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if the link is unknown, closed, or this node is not
    /// one of its endpoints.
    pub fn send(&mut self, link: LinkId, payload: impl Into<Payload>) -> Result<(), SendError> {
        let payload = payload.into();
        let node = self.node;
        let (to, tech) = match self.world.links.get(link) {
            Some(state) => {
                if !state.open {
                    return Err(SendError::Closed);
                }
                let to = state.peer_of(node).ok_or(SendError::NotEndpoint)?;
                (to, state.tech)
            }
            None if self.world.links.is_closed(link) => return Err(SendError::Closed),
            None => return Err(SendError::UnknownLink),
        };
        let profile = self.world.config.radio.profile(tech);
        let delay = profile.transmission_delay(payload.len());
        self.world.metrics.record_message_sent(node, tech, payload.len() as u64);
        if let Some(tel) = self.world.telemetry.as_deref_mut() {
            tel.observe(
                "world",
                "payload_bytes",
                None,
                PAYLOAD_SIZE_BOUNDS,
                payload.len() as u64,
            );
        }
        let msg = self.world.links.next_msg_id();
        let deliver_at = self.world.now + delay;
        self.world.links.send_in_flight(
            msg,
            InFlightMessage {
                link,
                from: node,
                to,
                payload,
                deliver_at,
            },
        );
        self.world.scheduler.schedule(deliver_at, Event::Deliver { msg });
        Ok(())
    }

    /// Closes an open link. The peer is notified asynchronously with
    /// [`DisconnectReason::PeerClosed`](crate::node::DisconnectReason::PeerClosed).
    pub fn close(&mut self, link: LinkId) {
        let node = self.node;
        let is_endpoint = self
            .world
            .links
            .get(link)
            .map(|l| l.open && l.has_endpoint(node))
            .unwrap_or(false);
        if !is_endpoint {
            return;
        }
        let at = self.world.now;
        self.world
            .scheduler
            .schedule(at, Event::Disconnect { link, closer: node });
    }

    /// Samples the current quality of an open link (0-255), or `None` if the
    /// link is closed or out of range. Mirrors listening on the HCI channel
    /// for RSSI / link quality (§3.4.1).
    pub fn link_quality(&mut self, link: LinkId) -> Option<u8> {
        let node = self.node;
        self.world.metrics.record_quality_sample(node);
        self.world.link_quality(link)
    }

    /// Read-only snapshot of a link.
    pub fn link_info(&self, link: LinkId) -> Option<LinkInfo> {
        self.world.link_info(link)
    }

    /// Installs the artificial quality decay of §5.2.1 on a link.
    pub fn set_link_quality_override(&mut self, link: LinkId, initial: f64, decay_per_sec: f64) {
        self.world.set_link_quality_override(link, initial, decay_per_sec);
    }
}
