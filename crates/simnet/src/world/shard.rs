//! The sharded world: conservative-lookahead intra-run parallelism.
//!
//! [`World`](super::World) is a single-threaded event loop; one run tops out
//! around 10k nodes no matter how many cores the machine has. This module
//! adds [`ShardedWorld`]: the same radio/mobility/fault substrate, spatially
//! partitioned into per-thread **shards** that each own the nodes, links and
//! event queue of one contiguous stripe of the simulated area and run their
//! event loops independently inside a conservative lookahead **window**.
//!
//! ## The windowed execution model
//!
//! Time advances in fixed windows of width `W` (default: the link-check
//! interval). Within a window every node processes only its *own* events —
//! timers, inquiry completions, link checks, fault actions and messages that
//! arrived at earlier barriers. Anything one node does that another node
//! could observe is expressed as a message and becomes visible at
//! `max(natural_time, start of the next window)`; at each window barrier the
//! coordinator collects every emitted message, sorts the batch into the
//! canonical `(effective time, origin node, per-origin sequence)` order and
//! delivers it into the owning shards. Reads of *other* nodes' dynamic state
//! (is it alive? discoverable? mid-scan?) go through a per-window
//! **snapshot** taken at the window start, paired with a per-window bucket
//! grid over window-start positions; exact positions are always available
//! because compiled [`MotionPlan`]s are pure data shared by every shard.
//!
//! Crucially these windowed semantics apply **at every shard count,
//! including one**: the partition decides which thread executes a node,
//! never what the node observes. That is what makes same-seed runs
//! byte-identical at any shard count — every RNG draw comes from the
//! per-node stream (derived exactly as [`World::add_node`] derives it),
//! every queue insertion happens at a deterministic point of the node's own
//! timeline, and every identifier (links, attempts) is packed from
//! `(initiator, per-node counter)` instead of a global counter whose value
//! would depend on thread interleaving.
//!
//! Differences from the sequential `World`, all bounded by one window
//! (500 ms by default): cross-node effects (connection handshakes, message
//! delivery, link-break notifications, discovery visibility of state
//! changes) can be observed up to `W` later than the sequential world would
//! deliver them, link quality is sampled from the *querying* node's RNG
//! stream, and fault support covers node crash/restart and radio outages
//! (loss bursts and flapping links draw from a globally ordered fault RNG
//! and are rejected). The sequential `World` is untouched: existing
//! experiments reproduce byte-identically.

use std::any::Any;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::event::Scheduler;
use crate::faults::{FaultAction, FaultPlan, FaultStats, LifecycleEvent, LifecycleKind};
use crate::geometry::{Point, Rect};
use crate::metrics::{Counters, Metrics};
use crate::mobility::{MobilityModel, MotionPlan};
use crate::node::{
    AttemptId, ConnectError, DisconnectReason, IncomingConnection, InquiryHit, LinkId, NodeId, TimerToken,
};
use crate::payload::SharedPayload;
use crate::radio::{RadioEnvironment, RadioTech};
use crate::rng::SimRng;
use crate::telemetry::{Histogram, Phase, Profiler, Telemetry, TelemetryConfig, PAYLOAD_SIZE_BOUNDS};
use crate::time::{SimDuration, SimTime};
use crate::world::partition::{
    imbalance, AdaptiveShards, DensityHistogram, HysteresisController, PartitionMap, PartitionStats,
};
use crate::world::SendError;

/// Same per-node RNG label scheme as `World::add_node`, so a node's stream
/// depends only on the world seed and its id — never on shard layout.
const NODE_RNG_LABEL: u64 = 0x4E4F_4445_0000_0000;

/// Matches the sequential grid's query slack (`grid::QUERY_PAD_M`).
const QUERY_PAD_M: f64 = 1e-3;

/// Link/attempt identifiers pack the initiating node into the high bits and
/// a per-node counter into the low bits, so ids are unique and
/// shard-count-independent without any shared counter.
const ID_NODE_SHIFT: u32 = 32;

/// Configuration for a [`ShardedWorld`].
#[derive(Debug, Clone)]
pub struct ShardedConfig {
    /// Master seed; per-node streams are derived from it exactly as the
    /// sequential world derives them.
    pub seed: u64,
    /// Radio technology profiles.
    pub radio: RadioEnvironment,
    /// The simulated area. Shards are vertical stripes of this rectangle;
    /// node ownership follows the stripe containing the node's position at
    /// each window barrier.
    pub area: Rect,
    /// Number of shards (worker threads). Results are byte-identical at any
    /// value; zero is treated as one.
    pub shards: usize,
    /// The conservative lookahead window. Defaults to
    /// `link_check_interval` when `None`.
    pub window: Option<SimDuration>,
    /// How often the initiator of each link re-validates it.
    pub link_check_interval: SimDuration,
    /// Horizon up to which mobility models are compiled into motion plans.
    pub mobility_horizon: SimTime,
    /// Upper bound on any node's speed in metres per second. Used to pad
    /// per-window grid queries so a window-start index still yields a
    /// superset of the nodes in range at any instant inside the window.
    pub max_speed_mps: f64,
    /// Spatial-grid cell size override in metres; defaults to the smallest
    /// finite radio range (the same rule as `WorldConfig`).
    pub grid_cell_m: Option<f64>,
    /// Density-adaptive stripe rebalancing (see
    /// [`partition`](crate::world::partition)). Off by default; switching it
    /// on changes only which thread executes a node — never what the node
    /// observes — so traces stay byte-identical either way.
    pub adaptive: AdaptiveShards,
}

impl ShardedConfig {
    /// A sharded-world configuration with library defaults.
    pub fn new(seed: u64, area: Rect) -> Self {
        ShardedConfig {
            seed,
            radio: RadioEnvironment::default(),
            area,
            shards: 1,
            window: None,
            link_check_interval: SimDuration::from_millis(500),
            mobility_horizon: SimTime::from_secs(4 * 3600),
            max_speed_mps: 3.0,
            grid_cell_m: None,
            adaptive: AdaptiveShards::default(),
        }
    }

    /// The effective lookahead window.
    pub fn resolved_window(&self) -> SimDuration {
        let w = self.window.unwrap_or(self.link_check_interval);
        if w.is_zero() {
            SimDuration::from_micros(1)
        } else {
            w
        }
    }

    fn resolved_grid_cell_m(&self) -> f64 {
        if let Some(cell) = self.grid_cell_m {
            return cell;
        }
        let min_range = [
            self.radio.bluetooth.range_m,
            self.radio.wlan.range_m,
            self.radio.gprs.range_m,
        ]
        .into_iter()
        .flatten()
        .filter(|r| r.is_finite() && *r > 0.0)
        .fold(f64::INFINITY, f64::min);
        if min_range.is_finite() {
            min_range
        } else {
            50.0
        }
    }
}

/// Behaviour attached to a node of the sharded world.
///
/// The mirror of [`NodeAgent`](crate::node::NodeAgent) with two deliberate
/// differences: the context is a [`ShardCtx`] (the windowed API), and the
/// trait requires `Send` because agents execute on worker threads. Payloads
/// arrive as [`SharedPayload`] — the `Arc`-backed buffer that crosses shard
/// boundaries without copying.
#[allow(unused_variables)]
pub trait ShardAgent: Any + Send {
    /// Upcast for dynamic inspection (post-run assertions).
    fn as_any(&self) -> &dyn Any;
    /// Mutable upcast for dynamic inspection.
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// The node has powered on.
    fn on_start(&mut self, ctx: &mut ShardCtx<'_>) {}
    /// The node restarted after a crash. Defaults to [`ShardAgent::on_start`].
    fn on_restart(&mut self, ctx: &mut ShardCtx<'_>) {
        self.on_start(ctx);
    }
    /// A timer scheduled through [`ShardCtx::schedule`] fired.
    fn on_timer(&mut self, ctx: &mut ShardCtx<'_>, token: TimerToken) {}
    /// A device inquiry finished.
    fn on_inquiry_complete(&mut self, ctx: &mut ShardCtx<'_>, tech: RadioTech, hits: Vec<InquiryHit>) {}
    /// A peer asks to connect; return `true` to accept.
    fn on_incoming_connection(&mut self, ctx: &mut ShardCtx<'_>, incoming: IncomingConnection) -> bool {
        false
    }
    /// A connection attempt initiated by this node succeeded.
    fn on_connected(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        attempt: AttemptId,
        link: LinkId,
        peer: NodeId,
        tech: RadioTech,
    ) {
    }
    /// A connection attempt initiated by this node failed.
    fn on_connect_failed(
        &mut self,
        ctx: &mut ShardCtx<'_>,
        attempt: AttemptId,
        peer: NodeId,
        tech: RadioTech,
        error: ConnectError,
    ) {
    }
    /// A message arrived on an established link.
    fn on_message(&mut self, ctx: &mut ShardCtx<'_>, link: LinkId, from: NodeId, payload: SharedPayload) {}
    /// An established link went away.
    fn on_disconnected(&mut self, ctx: &mut ShardCtx<'_>, link: LinkId, peer: NodeId, reason: DisconnectReason) {}
}

fn tech_bit(tech: RadioTech) -> u8 {
    match tech {
        RadioTech::Bluetooth => 1,
        RadioTech::Wlan => 2,
        RadioTech::Gprs => 4,
    }
}

fn tech_index(tech: RadioTech) -> usize {
    match tech {
        RadioTech::Bluetooth => 0,
        RadioTech::Wlan => 1,
        RadioTech::Gprs => 2,
    }
}

/// Inverse of [`tech_index`]; the order also matches `RadioTech`'s `Ord`, so
/// array-indexed folds replay the old `BTreeMap` iteration order exactly.
const TECH_BY_INDEX: [RadioTech; 3] = [RadioTech::Bluetooth, RadioTech::Wlan, RadioTech::Gprs];

/// Per-node dynamic state published at each window barrier. Shards read
/// *other* nodes' state only through this snapshot, so what a node observes
/// never depends on which shard executes its neighbours.
#[derive(Clone, Copy)]
struct NodeSnapshot {
    alive: bool,
    techs: u8,
    discoverable: u8,
    radio_off: u8,
    inquiring_until: [SimTime; 3],
}

impl Default for NodeSnapshot {
    fn default() -> Self {
        NodeSnapshot {
            alive: false,
            techs: 0,
            discoverable: 0,
            radio_off: 0,
            inquiring_until: [SimTime::ZERO; 3],
        }
    }
}

/// One endpoint's view of an established link.
#[derive(Clone, Copy, PartialEq, Eq)]
enum LinkStatus {
    Open,
    /// We closed gracefully; in-flight data from the peer still delivers.
    ClosedLocal,
}

#[derive(Clone, Copy)]
struct LinkHalf {
    peer: NodeId,
    tech: RadioTech,
    /// The initiating endpoint owns the periodic link checks.
    initiator: bool,
    status: LinkStatus,
}

/// A cross-node effect, exchanged at window barriers and merged in the
/// canonical `(at, origin, seq)` order.
struct ShardMsg {
    at: SimTime,
    origin: NodeId,
    seq: u64,
    to: NodeId,
    body: MsgBody,
}

enum MsgBody {
    ConnectRequest {
        attempt: AttemptId,
        link: LinkId,
        tech: RadioTech,
    },
    ConnectReply {
        attempt: AttemptId,
        link: LinkId,
        tech: RadioTech,
        accepted: bool,
        error: ConnectError,
    },
    Data {
        link: LinkId,
        payload: SharedPayload,
    },
    /// Graceful close by the peer; ordered after all of its in-flight data.
    Closed {
        link: LinkId,
    },
    /// Non-graceful break (peer crash, radio outage, range drift).
    Broken {
        link: LinkId,
        reason: DisconnectReason,
    },
}

/// A node-local event. Everything here is scheduled either by the node's own
/// execution or by the canonical barrier dispatch, so per-queue insertion
/// order — the tie-breaker for equal times — is shard-count-independent.
enum NodeEvent {
    Start,
    Timer {
        token: TimerToken,
        epoch: u64,
    },
    InquiryComplete {
        tech: RadioTech,
        epoch: u64,
    },
    ConnectResolve {
        attempt: AttemptId,
        peer: NodeId,
        tech: RadioTech,
        epoch: u64,
    },
    LinkCheck {
        link: LinkId,
    },
    /// Deferred local agent notification (e.g. the `LocalClosed` callback
    /// after `ShardCtx::close`), delivered once the current callback returns.
    Disconnected {
        link: LinkId,
        peer: NodeId,
        reason: DisconnectReason,
        epoch: u64,
    },
    Fault {
        idx: usize,
    },
    Inbox {
        origin: NodeId,
        body: MsgBody,
    },
}

/// Everything one shard owns about one node.
struct ShardNode {
    id: NodeId,
    techs: u8,
    discoverable: u8,
    radio_off: u8,
    inquiring_until: [SimTime; 3],
    alive: bool,
    epoch: u64,
    rng: SimRng,
    agent: Option<Box<dyn ShardAgent>>,
    queue: Scheduler<NodeEvent>,
    /// Hash tables, not ordered maps: the hot path only probes by key, and
    /// every place that *iterates* (crash/outage teardown, barrier folds)
    /// either sorts into canonical id order first or folds commutatively, so
    /// hash order never leaks into message sequencing or digests.
    links: HashMap<LinkId, LinkHalf>,
    /// Initiator-side attempts that sent a `ConnectRequest` and await the
    /// reply: attempt -> (peer, tech, link id reserved for the connection).
    pending: HashMap<AttemptId, (NodeId, RadioTech, LinkId)>,
    fault_actions: Vec<(SimTime, FaultAction)>,
    counters: Counters,
    stats: FaultStats,
    lifecycle: Vec<LifecycleEvent>,
    next_attempt: u64,
    next_link: u64,
    next_msg_seq: u64,
    /// Events this node processed since the last barrier load fold — the
    /// per-node contribution to the shard load model. Layout-invariant: a
    /// node processes the same events whatever shard executes it.
    window_events: u64,
}

impl ShardNode {
    fn radio_enabled(&self, tech: RadioTech) -> bool {
        self.alive && self.techs & tech_bit(tech) != 0 && self.radio_off & tech_bit(tech) == 0
    }

    fn snapshot(&self) -> NodeSnapshot {
        NodeSnapshot {
            alive: self.alive,
            techs: self.techs,
            discoverable: self.discoverable,
            radio_off: self.radio_off,
            inquiring_until: self.inquiring_until,
        }
    }
}

/// Per-window bucket grid over window-start positions of live nodes.
/// Queries pad the radius by `max_speed * window` so the window-start index
/// still covers every node actually in range at any instant of the window;
/// callers apply the exact predicate on exact positions.
struct WindowGrid {
    cell_m: f64,
    /// Rebuild generation. Buckets stamped with an older generation are
    /// logically empty; they are lazily reset on first touch instead of
    /// walking every bucket the grid has ever populated at each window.
    stamp: u64,
    cells: HashMap<(i64, i64), GridBucket>,
}

#[derive(Default)]
struct GridBucket {
    stamp: u64,
    ids: Vec<NodeId>,
}

impl WindowGrid {
    fn new(cell_m: f64) -> Self {
        assert!(cell_m > 0.0 && cell_m.is_finite(), "invalid grid cell size: {cell_m}");
        WindowGrid {
            cell_m,
            stamp: 0,
            cells: HashMap::new(),
        }
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        ((p.x / self.cell_m).floor() as i64, (p.y / self.cell_m).floor() as i64)
    }

    /// Rebuilds the index for the window starting at `t0`. Buckets keep
    /// their allocations across windows (stale ones are invalidated by the
    /// generation stamp, so the rebuild touches only occupied cells); nodes
    /// are inserted in id order so every bucket stays id-sorted.
    fn rebuild(&mut self, t0: SimTime, plans: &[MotionPlan], snapshot: &[NodeSnapshot]) {
        self.stamp += 1;
        for (raw, snap) in snapshot.iter().enumerate() {
            if !snap.alive {
                continue;
            }
            let cell = self.cell_of(plans[raw].position_at(t0));
            let bucket = self.cells.entry(cell).or_default();
            if bucket.stamp != self.stamp {
                bucket.stamp = self.stamp;
                bucket.ids.clear();
            }
            bucket.ids.push(NodeId::from_raw(raw as u64));
        }
    }

    /// Ids of every node bucketed in a cell intersecting the disk, sorted
    /// ascending, appended into a caller-owned scratch buffer (cleared
    /// first) — the per-shard reuse of the sequential grid's `query_into`.
    fn query_into(&self, center: Point, radius: f64, out: &mut Vec<NodeId>) {
        out.clear();
        let r = radius + QUERY_PAD_M;
        let ix_min = ((center.x - r) / self.cell_m).floor() as i64;
        let ix_max = ((center.x + r) / self.cell_m).floor() as i64;
        let iy_min = ((center.y - r) / self.cell_m).floor() as i64;
        let iy_max = ((center.y + r) / self.cell_m).floor() as i64;
        for i in ix_min..=ix_max {
            for j in iy_min..=iy_max {
                if let Some(bucket) = self.cells.get(&(i, j)) {
                    if bucket.stamp == self.stamp {
                        out.extend_from_slice(&bucket.ids);
                    }
                }
            }
        }
        out.sort_unstable();
    }
}

/// Immutable state shared by every shard during one window.
struct GlobalView<'a> {
    radio: &'a RadioEnvironment,
    plans: &'a [MotionPlan],
    snapshot: &'a [NodeSnapshot],
    grid: &'a WindowGrid,
    /// End of the current window; cross-node effects emitted during the
    /// window become visible no earlier than this.
    window_end: SimTime,
    link_check_interval: SimDuration,
    /// `max_speed * window + slack`: how far a candidate can drift from its
    /// window-start position.
    query_pad_m: f64,
}

/// One shard: the nodes it currently owns, their event queues, and the
/// outbox of cross-node messages emitted this window.
struct Shard {
    /// Dense by raw node id; `None` for nodes owned by other shards.
    nodes: Vec<Option<Box<ShardNode>>>,
    /// Lazy index over the owned nodes' earliest pending events:
    /// `(time, raw id)` entries, corrected on pop when stale.
    index: BinaryHeap<Reverse<(SimTime, u64)>>,
    outbox: Vec<ShardMsg>,
    /// Per-technology (messages, bytes) sent by nodes while owned here,
    /// indexed by [`tech_index`]; commutative, merged into the final
    /// [`Metrics`] at assembly (zero entries skipped, matching the sparse
    /// map this used to be).
    tech_msgs: [(u64, u64); 3],
    /// Reusable grid-query scratch buffer (one per shard, not per query).
    scratch: Vec<NodeId>,
    /// Shard-local payload-size histogram, allocated only when telemetry is
    /// on. Commutative, so the coordinator's barrier-time fold across shards
    /// is independent of the shard layout.
    payload_hist: Option<Histogram>,
    /// Shard-local per-phase profiler (inert unless profiling is enabled);
    /// folded into the coordinator's view on demand.
    profiler: Profiler,
}

impl Shard {
    fn new() -> Self {
        Shard {
            nodes: Vec::new(),
            index: BinaryHeap::new(),
            outbox: Vec::new(),
            tech_msgs: [(0, 0); 3],
            scratch: Vec::new(),
            payload_hist: None,
            profiler: Profiler::disabled(),
        }
    }

    /// Runs every owned event strictly before `view.window_end`.
    fn run_window(&mut self, view: &GlobalView<'_>) {
        let t1 = view.window_end;
        let Shard {
            nodes,
            index,
            outbox,
            tech_msgs,
            scratch,
            payload_hist,
            profiler,
        } = self;
        let mut exec = Executor {
            view,
            outbox,
            tech_msgs,
            scratch,
            payload_hist,
        };
        while let Some(&Reverse((t, raw))) = index.peek() {
            if t >= t1 {
                break;
            }
            index.pop();
            let Some(node) = nodes[raw as usize].as_deref_mut() else {
                continue; // stale entry: the node migrated away
            };
            match node.queue.peek_time() {
                None => {}
                Some(head) if head != t => index.push(Reverse((head, raw))),
                Some(_) => {
                    let (at, event) = node.queue.pop().expect("peeked");
                    node.window_events += 1;
                    if profiler.is_enabled() {
                        let phase = phase_of_node_event(&event);
                        let span = profiler.begin();
                        exec.process(node, at, event);
                        profiler.end(phase, span);
                    } else {
                        exec.process(node, at, event);
                    }
                    if let Some(next) = node.queue.peek_time() {
                        index.push(Reverse((next, raw)));
                    }
                }
            }
        }
    }
}

/// The profiling phase a node-local event's handling is attributed to.
/// Inbox bodies split between connection handshakes and data-path work.
fn phase_of_node_event(event: &NodeEvent) -> Phase {
    match event {
        NodeEvent::Start => Phase::AgentStart,
        NodeEvent::Timer { .. } => Phase::Timers,
        NodeEvent::InquiryComplete { .. } => Phase::Discovery,
        NodeEvent::ConnectResolve { .. } => Phase::Connect,
        NodeEvent::LinkCheck { .. } => Phase::LinkCheck,
        NodeEvent::Disconnected { .. } => Phase::Disconnect,
        NodeEvent::Fault { .. } => Phase::Faults,
        NodeEvent::Inbox { body, .. } => match body {
            MsgBody::ConnectRequest { .. } | MsgBody::ConnectReply { .. } => Phase::Connect,
            MsgBody::Data { .. } => Phase::Delivery,
            MsgBody::Closed { .. } | MsgBody::Broken { .. } => Phase::Disconnect,
        },
    }
}

/// The per-window execution context of one shard's event loop.
struct Executor<'a> {
    view: &'a GlobalView<'a>,
    outbox: &'a mut Vec<ShardMsg>,
    tech_msgs: &'a mut [(u64, u64); 3],
    scratch: &'a mut Vec<NodeId>,
    payload_hist: &'a mut Option<Histogram>,
}

impl Executor<'_> {
    fn call_agent(
        &mut self,
        node: &mut ShardNode,
        now: SimTime,
        f: impl FnOnce(&mut dyn ShardAgent, &mut ShardCtx<'_>),
    ) {
        let Some(mut agent) = node.agent.take() else {
            return;
        };
        {
            let mut ctx = ShardCtx {
                now,
                node,
                view: self.view,
                outbox: self.outbox,
                tech_msgs: self.tech_msgs,
                payload_hist: self.payload_hist,
            };
            f(agent.as_mut(), &mut ctx);
        }
        node.agent = Some(agent);
    }

    fn emit(outbox: &mut Vec<ShardMsg>, node: &mut ShardNode, at: SimTime, to: NodeId, body: MsgBody) {
        let seq = node.next_msg_seq;
        node.next_msg_seq += 1;
        outbox.push(ShardMsg {
            at,
            origin: node.id,
            seq,
            to,
            body,
        });
    }

    fn process(&mut self, node: &mut ShardNode, now: SimTime, event: NodeEvent) {
        match event {
            NodeEvent::Start => {
                if node.alive {
                    self.call_agent(node, now, |agent, ctx| agent.on_start(ctx));
                }
            }
            NodeEvent::Timer { token, epoch } => {
                if node.alive && node.epoch == epoch {
                    self.call_agent(node, now, |agent, ctx| agent.on_timer(ctx, token));
                }
            }
            NodeEvent::InquiryComplete { tech, epoch } => {
                if node.alive && node.epoch == epoch {
                    self.complete_inquiry(node, now, tech);
                }
            }
            NodeEvent::ConnectResolve {
                attempt,
                peer,
                tech,
                epoch,
            } => {
                if node.alive && node.epoch == epoch {
                    self.resolve_connect(node, now, attempt, peer, tech);
                }
            }
            NodeEvent::LinkCheck { link } => self.check_link(node, now, link),
            NodeEvent::Disconnected {
                link,
                peer,
                reason,
                epoch,
            } => {
                if node.alive && node.epoch == epoch {
                    self.call_agent(node, now, |agent, ctx| agent.on_disconnected(ctx, link, peer, reason));
                }
            }
            NodeEvent::Fault { idx } => self.apply_fault(node, now, idx),
            NodeEvent::Inbox { origin, body } => self.process_msg(node, now, origin, body),
        }
    }

    fn complete_inquiry(&mut self, node: &mut ShardNode, now: SimTime, tech: RadioTech) {
        let profile = self.view.radio.profile(tech).clone();
        let idx = tech_index(tech);
        let mut hits = Vec::new();
        if node.radio_enabled(tech) {
            let range = profile
                .range_m
                .expect("sharded world supports range-bounded technologies only");
            let pos = self.view.plans[node.id.as_raw() as usize].position_at(now);
            self.view
                .grid
                .query_into(pos, range + self.view.query_pad_m, self.scratch);
            let bit = tech_bit(tech);
            for &candidate in self.scratch.iter() {
                if candidate == node.id {
                    continue;
                }
                let snap = &self.view.snapshot[candidate.as_raw() as usize];
                if !snap.alive
                    || snap.techs & bit == 0
                    || snap.radio_off & bit != 0
                    || snap.discoverable & bit == 0
                    || (profile.inquiry_asymmetric && snap.inquiring_until[idx] > now)
                {
                    continue;
                }
                let distance = pos.distance(self.view.plans[candidate.as_raw() as usize].position_at(now));
                if !profile.in_range(distance) {
                    continue;
                }
                if node.rng.chance(profile.inquiry_miss_prob) {
                    continue;
                }
                if let Some(quality) = profile.sample_quality(distance, &mut node.rng) {
                    hits.push(InquiryHit {
                        node: candidate,
                        tech,
                        quality,
                    });
                }
            }
        }
        if node.inquiring_until[idx] <= now {
            node.inquiring_until[idx] = SimTime::ZERO;
        }
        node.counters.inquiry_hits += hits.len() as u64;
        self.call_agent(node, now, |agent, ctx| agent.on_inquiry_complete(ctx, tech, hits));
    }

    fn resolve_connect(
        &mut self,
        node: &mut ShardNode,
        now: SimTime,
        attempt: AttemptId,
        peer: NodeId,
        tech: RadioTech,
    ) {
        let profile = self.view.radio.profile(tech);
        // The fault draw mirrors the sequential world: sampled from the
        // initiator's stream at resolve time, before any peer checks.
        let fault = profile.sample_setup_fault(&mut node.rng);
        let error = if fault {
            Some(ConnectError::Fault)
        } else {
            let snap = &self.view.snapshot[peer.as_raw() as usize];
            let bit = tech_bit(tech);
            if !snap.alive || snap.techs & bit == 0 || snap.radio_off & bit != 0 {
                Some(ConnectError::Unreachable)
            } else {
                let own = self.view.plans[node.id.as_raw() as usize].position_at(now);
                let theirs = self.view.plans[peer.as_raw() as usize].position_at(now);
                if !profile.in_range(own.distance(theirs)) {
                    Some(ConnectError::OutOfRange)
                } else {
                    None
                }
            }
        };
        match error {
            Some(error) => {
                node.counters.connect_failures += 1;
                self.call_agent(node, now, |agent, ctx| {
                    agent.on_connect_failed(ctx, attempt, peer, tech, error)
                });
            }
            None => {
                let link = LinkId((node.id.as_raw() << ID_NODE_SHIFT) | node.next_link);
                node.next_link += 1;
                node.pending.insert(attempt, (peer, tech, link));
                let at = now.max(self.view.window_end);
                Self::emit(
                    self.outbox,
                    node,
                    at,
                    peer,
                    MsgBody::ConnectRequest { attempt, link, tech },
                );
            }
        }
    }

    fn check_link(&mut self, node: &mut ShardNode, now: SimTime, link: LinkId) {
        if !node.alive {
            return; // the crash already tore the table down
        }
        let Some(half) = node.links.get(&link).copied() else {
            return;
        };
        if half.status != LinkStatus::Open || !half.initiator {
            return;
        }
        let snap = &self.view.snapshot[half.peer.as_raw() as usize];
        let bit = tech_bit(half.tech);
        let peer_dead = !snap.alive;
        let peer_dark = snap.radio_off & bit != 0;
        let own = self.view.plans[node.id.as_raw() as usize].position_at(now);
        let theirs = self.view.plans[half.peer.as_raw() as usize].position_at(now);
        let in_range = self.view.radio.profile(half.tech).in_range(own.distance(theirs)) && node.radio_off & bit == 0;
        if !peer_dead && !peer_dark && in_range {
            node.queue
                .schedule(now + self.view.link_check_interval, NodeEvent::LinkCheck { link });
            return;
        }
        let reason = if peer_dead {
            DisconnectReason::PeerFailed
        } else {
            DisconnectReason::OutOfRange
        };
        node.links.remove(&link);
        node.counters.links_broken += 1;
        let at = now.max(self.view.window_end);
        Self::emit(self.outbox, node, at, half.peer, MsgBody::Broken { link, reason });
        self.call_agent(node, now, |agent, ctx| {
            agent.on_disconnected(ctx, link, half.peer, reason)
        });
    }

    fn apply_fault(&mut self, node: &mut ShardNode, now: SimTime, idx: usize) {
        let action = node.fault_actions[idx].1;
        match action {
            FaultAction::NodeDown => {
                if !node.alive {
                    return;
                }
                node.alive = false;
                node.epoch += 1;
                node.discoverable = 0;
                node.inquiring_until = [SimTime::ZERO; 3];
                node.pending.clear();
                node.stats.crashes += 1;
                node.lifecycle.push(LifecycleEvent {
                    at: now,
                    node: node.id,
                    kind: LifecycleKind::NodeDown,
                });
                // Hash order must not pick the Broken emission order (it
                // assigns per-origin sequence numbers): sort into the
                // ascending link-id order the old ordered map produced.
                let mut links: Vec<(LinkId, LinkHalf)> = node.links.drain().collect();
                links.sort_unstable_by_key(|(link, _)| link.0);
                let at = now.max(self.view.window_end);
                for (link, half) in links {
                    node.counters.links_broken += 1;
                    Self::emit(
                        self.outbox,
                        node,
                        at,
                        half.peer,
                        MsgBody::Broken {
                            link,
                            reason: DisconnectReason::PeerFailed,
                        },
                    );
                }
            }
            FaultAction::NodeUp => {
                if node.alive {
                    return;
                }
                node.alive = true;
                node.discoverable = node.techs;
                node.stats.restarts += 1;
                node.lifecycle.push(LifecycleEvent {
                    at: now,
                    node: node.id,
                    kind: LifecycleKind::NodeUp,
                });
                self.call_agent(node, now, |agent, ctx| agent.on_restart(ctx));
            }
            FaultAction::RadioDown(tech) => {
                let bit = tech_bit(tech);
                if node.radio_off & bit != 0 {
                    return;
                }
                node.radio_off |= bit;
                node.stats.radio_outages += 1;
                node.lifecycle.push(LifecycleEvent {
                    at: now,
                    node: node.id,
                    kind: LifecycleKind::RadioDown(tech),
                });
                // Links on the dark technology break for both endpoints.
                // Sorted by link id for the same reason as the crash path:
                // emission order assigns message sequence numbers.
                let mut broken: Vec<(LinkId, LinkHalf)> = node
                    .links
                    .iter()
                    .filter(|(_, h)| h.tech == tech)
                    .map(|(l, h)| (*l, *h))
                    .collect();
                broken.sort_unstable_by_key(|(link, _)| link.0);
                let at = now.max(self.view.window_end);
                for (link, half) in broken {
                    node.links.remove(&link);
                    if half.status == LinkStatus::Open {
                        node.counters.links_broken += 1;
                    }
                    Self::emit(
                        self.outbox,
                        node,
                        at,
                        half.peer,
                        MsgBody::Broken {
                            link,
                            reason: DisconnectReason::OutOfRange,
                        },
                    );
                    if node.alive && half.status == LinkStatus::Open {
                        let epoch = node.epoch;
                        node.queue.schedule(
                            now,
                            NodeEvent::Disconnected {
                                link,
                                peer: half.peer,
                                reason: DisconnectReason::OutOfRange,
                                epoch,
                            },
                        );
                    }
                }
            }
            FaultAction::RadioUp(tech) => {
                let bit = tech_bit(tech);
                if node.radio_off & bit == 0 {
                    return;
                }
                node.radio_off &= !bit;
                node.stats.radio_restores += 1;
                node.lifecycle.push(LifecycleEvent {
                    at: now,
                    node: node.id,
                    kind: LifecycleKind::RadioUp(tech),
                });
            }
        }
    }

    fn process_msg(&mut self, node: &mut ShardNode, now: SimTime, origin: NodeId, body: MsgBody) {
        match body {
            MsgBody::ConnectRequest { attempt, link, tech } => {
                let bit = tech_bit(tech);
                let reachable = node.alive && node.techs & bit != 0 && node.radio_off & bit == 0;
                let at = now.max(self.view.window_end);
                if !reachable {
                    Self::emit(
                        self.outbox,
                        node,
                        at,
                        origin,
                        MsgBody::ConnectReply {
                            attempt,
                            link,
                            tech,
                            accepted: false,
                            error: ConnectError::Unreachable,
                        },
                    );
                    return;
                }
                let mut accepted = false;
                self.call_agent(node, now, |agent, ctx| {
                    accepted = agent.on_incoming_connection(
                        ctx,
                        IncomingConnection {
                            from: origin,
                            tech,
                            link,
                        },
                    );
                });
                if accepted {
                    node.links.insert(
                        link,
                        LinkHalf {
                            peer: origin,
                            tech,
                            initiator: false,
                            status: LinkStatus::Open,
                        },
                    );
                }
                Self::emit(
                    self.outbox,
                    node,
                    at,
                    origin,
                    MsgBody::ConnectReply {
                        attempt,
                        link,
                        tech,
                        accepted,
                        error: ConnectError::Rejected,
                    },
                );
            }
            MsgBody::ConnectReply {
                attempt,
                link,
                tech,
                accepted,
                error,
            } => {
                let valid = node.alive && node.pending.remove(&attempt).is_some();
                if !valid {
                    if accepted {
                        // We died (or restarted) while the handshake was in
                        // flight; tear the accepted half back down.
                        let at = now.max(self.view.window_end);
                        Self::emit(
                            self.outbox,
                            node,
                            at,
                            origin,
                            MsgBody::Broken {
                                link,
                                reason: DisconnectReason::PeerFailed,
                            },
                        );
                    }
                    return;
                }
                if accepted {
                    node.links.insert(
                        link,
                        LinkHalf {
                            peer: origin,
                            tech,
                            initiator: true,
                            status: LinkStatus::Open,
                        },
                    );
                    node.counters.connects_established += 1;
                    node.queue
                        .schedule(now + self.view.link_check_interval, NodeEvent::LinkCheck { link });
                    self.call_agent(node, now, |agent, ctx| {
                        agent.on_connected(ctx, attempt, link, origin, tech)
                    });
                } else {
                    node.counters.connect_failures += 1;
                    self.call_agent(node, now, |agent, ctx| {
                        agent.on_connect_failed(ctx, attempt, origin, tech, error)
                    });
                }
            }
            MsgBody::Data { link, payload } => {
                let deliverable = node.alive
                    && node
                        .links
                        .get(&link)
                        .map(|h| matches!(h.status, LinkStatus::Open | LinkStatus::ClosedLocal))
                        .unwrap_or(false);
                if deliverable {
                    node.counters.messages_delivered += 1;
                    self.call_agent(node, now, |agent, ctx| agent.on_message(ctx, link, origin, payload));
                } else {
                    node.counters.messages_lost += 1;
                }
            }
            MsgBody::Closed { link } => {
                let Some(half) = node.links.remove(&link) else {
                    return;
                };
                if half.status == LinkStatus::Open && node.alive {
                    self.call_agent(node, now, |agent, ctx| {
                        agent.on_disconnected(ctx, link, half.peer, DisconnectReason::PeerClosed)
                    });
                }
            }
            MsgBody::Broken { link, reason } => {
                let Some(half) = node.links.remove(&link) else {
                    return;
                };
                if half.status == LinkStatus::Open {
                    node.counters.links_broken += 1;
                    if node.alive {
                        self.call_agent(node, now, |agent, ctx| {
                            agent.on_disconnected(ctx, link, half.peer, reason)
                        });
                    }
                }
            }
        }
    }
}

/// The windowed node-side API handed to [`ShardAgent`] callbacks — the
/// sharded mirror of [`NodeCtx`](crate::world::NodeCtx).
pub struct ShardCtx<'a> {
    now: SimTime,
    node: &'a mut ShardNode,
    view: &'a GlobalView<'a>,
    outbox: &'a mut Vec<ShardMsg>,
    tech_msgs: &'a mut [(u64, u64); 3],
    payload_hist: &'a mut Option<Histogram>,
}

impl ShardCtx<'_> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The node this context belongs to.
    pub fn node_id(&self) -> NodeId {
        self.node.id
    }

    /// The node's exact current position.
    pub fn position(&self) -> Point {
        self.view.plans[self.node.id.as_raw() as usize].position_at(self.now)
    }

    /// The node's deterministic random stream (identical to the stream the
    /// sequential world would derive for the same seed and node id).
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self.node.rng
    }

    /// Schedules [`ShardAgent::on_timer`] with `token` after `after`.
    pub fn schedule(&mut self, after: SimDuration, token: TimerToken) {
        let epoch = self.node.epoch;
        self.node
            .queue
            .schedule(self.now + after, NodeEvent::Timer { token, epoch });
    }

    /// Starts a device inquiry; [`ShardAgent::on_inquiry_complete`] fires
    /// after the technology's inquiry duration. Hits reflect the window
    /// snapshot (at most one window stale) plus exact positions. GPRS has no
    /// radius to bound discovery with and is not supported in the sharded
    /// world.
    pub fn start_inquiry(&mut self, tech: RadioTech) {
        assert!(
            tech != RadioTech::Gprs,
            "sharded world supports range-bounded technologies only (Bluetooth/WLAN)"
        );
        let profile = self.view.radio.profile(tech);
        let duration = profile.inquiry_duration;
        let done = self.now + duration;
        let idx = tech_index(tech);
        self.node.inquiring_until[idx] = self.node.inquiring_until[idx].max(done);
        self.node.counters.inquiries_started += 1;
        let epoch = self.node.epoch;
        self.node
            .queue
            .schedule(done, NodeEvent::InquiryComplete { tech, epoch });
    }

    /// Changes whether this node answers inquiries on `tech`.
    pub fn set_discoverable(&mut self, tech: RadioTech, on: bool) {
        if on {
            self.node.discoverable |= tech_bit(tech);
        } else {
            self.node.discoverable &= !tech_bit(tech);
        }
    }

    /// Initiates a connection to `peer` over `tech`. Setup latency is
    /// sampled from this node's stream now; the outcome arrives through
    /// [`ShardAgent::on_connected`] / [`ShardAgent::on_connect_failed`]
    /// after the handshake crosses up to two window barriers.
    pub fn connect(&mut self, peer: NodeId, tech: RadioTech) -> AttemptId {
        let attempt = AttemptId((self.node.id.as_raw() << ID_NODE_SHIFT) | self.node.next_attempt);
        self.node.next_attempt += 1;
        self.node.counters.connect_attempts += 1;
        let latency = self.view.radio.profile(tech).sample_setup_latency(&mut self.node.rng);
        let epoch = self.node.epoch;
        self.node.queue.schedule(
            self.now + latency,
            NodeEvent::ConnectResolve {
                attempt,
                peer,
                tech,
                epoch,
            },
        );
        attempt
    }

    /// Sends `payload` on an established link. Delivery happens at
    /// `max(now + transmission delay, next window barrier)`.
    pub fn send(&mut self, link: LinkId, payload: impl Into<SharedPayload>) -> Result<(), SendError> {
        let Some(half) = self.node.links.get(&link).copied() else {
            return Err(SendError::UnknownLink);
        };
        if half.status != LinkStatus::Open {
            return Err(SendError::Closed);
        }
        let payload = payload.into();
        let profile = self.view.radio.profile(half.tech);
        let delay = profile.transmission_delay(payload.len());
        self.node.counters.messages_sent += 1;
        self.node.counters.bytes_sent += payload.len() as u64;
        let entry = &mut self.tech_msgs[tech_index(half.tech)];
        entry.0 += 1;
        entry.1 += payload.len() as u64;
        if let Some(hist) = self.payload_hist.as_mut() {
            hist.observe(payload.len() as u64);
        }
        let at = (self.now + delay).max(self.view.window_end);
        Executor::emit(self.outbox, self.node, at, half.peer, MsgBody::Data { link, payload });
        Ok(())
    }

    /// Gracefully closes a link. This node sees
    /// [`ShardAgent::on_disconnected`] with `LocalClosed` once the current
    /// callback returns; the peer sees `PeerClosed` after the barrier,
    /// ordered after all data this node sent before closing.
    pub fn close(&mut self, link: LinkId) {
        let Some(half) = self.node.links.get_mut(&link) else {
            return;
        };
        if half.status != LinkStatus::Open {
            return;
        }
        half.status = LinkStatus::ClosedLocal;
        let peer = half.peer;
        let epoch = self.node.epoch;
        self.node.queue.schedule(
            self.now,
            NodeEvent::Disconnected {
                link,
                peer,
                reason: DisconnectReason::LocalClosed,
                epoch,
            },
        );
        let at = self.now.max(self.view.window_end);
        Executor::emit(self.outbox, self.node, at, peer, MsgBody::Closed { link });
    }

    /// Samples the current quality of an open link (0–255) from the exact
    /// inter-node distance. Unlike the sequential world, the draw comes from
    /// the *querying* node's stream — the only way the sample can be
    /// independent of shard layout.
    pub fn link_quality(&mut self, link: LinkId) -> Option<u8> {
        let half = self.node.links.get(&link).copied()?;
        if half.status != LinkStatus::Open {
            return None;
        }
        self.node.counters.quality_samples += 1;
        let own = self.view.plans[self.node.id.as_raw() as usize].position_at(self.now);
        let theirs = self.view.plans[half.peer.as_raw() as usize].position_at(self.now);
        self.view
            .radio
            .profile(half.tech)
            .sample_quality(own.distance(theirs), &mut self.node.rng)
    }

    /// The peer on the other end of an established link.
    pub fn link_peer(&self, link: LinkId) -> Option<NodeId> {
        self.node.links.get(&link).map(|h| h.peer)
    }
}

/// A spatially sharded, deterministically parallel world.
///
/// See the [module docs](self) for the execution model. The public surface
/// mirrors the sequential [`World`](super::World) where the semantics carry
/// over: nodes are added with a mobility model, radios and a boxed agent;
/// fault plans (crash/restart/radio outages) install per node; metrics,
/// fault stats and the lifecycle stream are available after a run.
pub struct ShardedWorld {
    config: ShardedConfig,
    window: SimDuration,
    now: SimTime,
    master_rng: SimRng,
    names: Vec<String>,
    plans: Vec<MotionPlan>,
    shards: Vec<Shard>,
    owner: Vec<u32>,
    snapshot: Vec<NodeSnapshot>,
    grid: WindowGrid,
    /// The stripe boundaries. Uniform until the hysteresis gate fires a
    /// density-adaptive re-cut; either way ownership only decides which
    /// thread runs a node, never what the node observes.
    partition: PartitionMap,
    density: DensityHistogram,
    gate: HysteresisController,
    pstats: PartitionStats,
    /// Whether barriers fold the per-shard load model (adaptivity on, or
    /// per-shard telemetry requested). Off, barriers skip the fold entirely.
    track_loads: bool,
    /// Whether the telemetry recorder wants `shard/*` series.
    shard_series: bool,
    /// Reusable scratch for adaptive re-cuts.
    cuts_scratch: Vec<f64>,
    /// Reusable barrier merge buffer (outboxes drain into it each window).
    merge_scratch: Vec<ShardMsg>,
    metrics: Metrics,
    stats: FaultStats,
    lifecycle: Vec<LifecycleEvent>,
    /// Coordinator-owned telemetry recorder, sampled at window barriers in
    /// canonical node order; `None` (the default) keeps the barrier free of
    /// sampling work.
    telemetry: Option<Box<Telemetry>>,
    /// Coordinator-side profiler (snapshot, grid rebuild, window wall,
    /// barrier merge); per-event phases live in the shard-local profilers.
    profiler: Profiler,
}

impl ShardedWorld {
    /// Creates a sharded world from a configuration.
    pub fn new(config: ShardedConfig) -> Self {
        let shard_count = config.shards.max(1);
        let window = config.resolved_window();
        let cell_m = config.resolved_grid_cell_m();
        let master_rng = SimRng::new(config.seed);
        ShardedWorld {
            window,
            master_rng,
            names: Vec::new(),
            plans: Vec::new(),
            shards: (0..shard_count).map(|_| Shard::new()).collect(),
            owner: Vec::new(),
            snapshot: Vec::new(),
            grid: WindowGrid::new(cell_m),
            partition: PartitionMap::uniform(config.area.min_x, config.area.max_x, shard_count),
            density: DensityHistogram::new(config.area.min_x, config.area.max_x, config.adaptive.bins),
            gate: HysteresisController::new(config.adaptive.imbalance_threshold, config.adaptive.patience),
            pstats: PartitionStats::default(),
            track_loads: config.adaptive.enabled,
            shard_series: false,
            cuts_scratch: Vec::new(),
            merge_scratch: Vec::new(),
            metrics: Metrics::new(),
            stats: FaultStats::default(),
            lifecycle: Vec::new(),
            telemetry: None,
            profiler: Profiler::disabled(),
            now: SimTime::ZERO,
            config,
        }
    }

    /// Turns on the live telemetry plane. Shard-local recorders (the
    /// payload histograms) start recording and the coordinator samples the
    /// aggregate series at every window barrier that crosses a sample
    /// boundary. All folded quantities are commutative sums over per-node
    /// state, so the recorded series are byte-identical at any shard count.
    pub fn enable_telemetry(&mut self, config: TelemetryConfig) {
        self.shard_series = config.shard_series;
        self.track_loads = self.track_loads || config.shard_series;
        self.telemetry = Some(Box::new(Telemetry::new(config)));
        for shard in &mut self.shards {
            shard.payload_hist = Some(Histogram::new(PAYLOAD_SIZE_BOUNDS));
        }
    }

    /// The telemetry recorder, if enabled.
    pub fn telemetry(&self) -> Option<&Telemetry> {
        self.telemetry.as_deref()
    }

    /// Mutable access to the recorder (external gauges, the watch callback).
    pub fn telemetry_mut(&mut self) -> Option<&mut Telemetry> {
        self.telemetry.as_deref_mut()
    }

    /// Detaches and returns the recorder (turning telemetry off).
    pub fn take_telemetry(&mut self) -> Option<Box<Telemetry>> {
        self.telemetry.take()
    }

    /// Turns on per-phase wall-clock profiling: the coordinator times
    /// snapshot/grid/window/barrier work and every shard times its own event
    /// handling (so per-phase nanoseconds sum CPU time across shard threads).
    pub fn enable_profiling(&mut self) {
        self.profiler = Profiler::enabled();
        for shard in &mut self.shards {
            shard.profiler = Profiler::enabled();
        }
    }

    /// The merged per-phase profile: coordinator phases plus every
    /// shard-local profiler folded together.
    pub fn profile(&self) -> Profiler {
        let merged = Profiler::disabled();
        merged.merge(&self.profiler);
        for shard in &self.shards {
            merged.merge(&shard.profiler);
        }
        merged
    }

    /// Current simulation time (always a window boundary between runs).
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The configuration this world was built from.
    pub fn config(&self) -> &ShardedConfig {
        &self.config
    }

    /// The effective lookahead window.
    pub fn window(&self) -> SimDuration {
        self.window
    }

    /// Number of shards executing this world.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.plans.len()
    }

    /// All node ids in creation order.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.plans.len() as u64).map(NodeId::from_raw)
    }

    /// The display name of a node.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.names.get(node.as_raw() as usize).map(|s| s.as_str())
    }

    /// A node's exact position at the current time.
    pub fn position_of(&self, node: NodeId) -> Option<Point> {
        self.plans.get(node.as_raw() as usize).map(|p| p.position_at(self.now))
    }

    /// Whether the node is currently powered on.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.slot(node).map(|n| n.alive).unwrap_or(false)
    }

    /// Aggregated metrics, assembled at the end of the last run.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Aggregated fault-injection counters.
    pub fn fault_stats(&self) -> FaultStats {
        self.stats
    }

    /// The merged lifecycle stream, in canonical `(time, node)` order.
    pub fn lifecycle_events(&self) -> &[LifecycleEvent] {
        &self.lifecycle
    }

    /// Live partition diagnostics: per-shard loads, imbalance, re-cut count.
    /// Populated only while load tracking is on (adaptivity enabled or
    /// `shard/*` telemetry requested); otherwise all zeros.
    pub fn partition_stats(&self) -> &PartitionStats {
        &self.pstats
    }

    /// The current interior stripe boundaries (empty for one shard).
    pub fn stripe_cuts(&self) -> &[f64] {
        self.partition.cuts()
    }

    fn stripe_of(&self, p: Point) -> u32 {
        self.partition.stripe_of(p.x)
    }

    fn slot(&self, node: NodeId) -> Option<&ShardNode> {
        let raw = node.as_raw() as usize;
        let shard = *self.owner.get(raw)? as usize;
        self.shards[shard].nodes[raw].as_deref()
    }

    /// Adds a node with the given behaviour; ids are dense and assigned in
    /// insertion order. The node's RNG stream and compiled motion plan are
    /// derived exactly as the sequential world derives them.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        mobility: MobilityModel,
        techs: &[RadioTech],
        agent: Box<dyn ShardAgent>,
    ) -> NodeId {
        let raw = self.plans.len() as u64;
        let id = NodeId::from_raw(raw);
        let mut rng = self.master_rng.derive(NODE_RNG_LABEL | raw);
        let plan = mobility.compile(self.config.mobility_horizon, &mut rng);
        let mut tech_mask = 0u8;
        for t in techs {
            tech_mask |= tech_bit(*t);
        }
        let mut node = ShardNode {
            id,
            techs: tech_mask,
            discoverable: tech_mask,
            radio_off: 0,
            inquiring_until: [SimTime::ZERO; 3],
            alive: true,
            epoch: 0,
            rng,
            agent: Some(agent),
            queue: Scheduler::new(),
            links: HashMap::new(),
            pending: HashMap::new(),
            fault_actions: Vec::new(),
            counters: Counters::default(),
            stats: FaultStats::default(),
            lifecycle: Vec::new(),
            next_attempt: 0,
            next_link: 0,
            next_msg_seq: 0,
            window_events: 0,
        };
        node.queue.schedule(self.now, NodeEvent::Start);
        let owner = self.stripe_of(plan.position_at(self.now));
        for shard in &mut self.shards {
            shard.nodes.push(None);
        }
        self.shards[owner as usize].index.push(Reverse((self.now, raw)));
        self.shards[owner as usize].nodes[raw as usize] = Some(Box::new(node));
        self.owner.push(owner);
        self.names.push(name.into());
        self.plans.push(plan);
        self.snapshot.push(NodeSnapshot::default());
        id
    }

    /// Installs a fault plan on a node. The sharded world supports node
    /// crash/restart and radio outages; loss bursts and flapping links draw
    /// from a globally ordered fault RNG and are rejected.
    pub fn install_fault_plan(&mut self, node: NodeId, plan: &FaultPlan) {
        assert!(
            plan.bursts().is_empty() && plan.flaps().is_empty(),
            "sharded world supports crash/restart/radio-outage faults only"
        );
        let raw = node.as_raw() as usize;
        let shard = &mut self.shards[self.owner[raw] as usize];
        let now = self.now;
        let slot = shard.nodes[raw].as_deref_mut().expect("node exists");
        for &(at, action) in plan.actions() {
            let idx = slot.fault_actions.len();
            let when = at.max(now);
            slot.fault_actions.push((when, action));
            slot.queue.schedule(when, NodeEvent::Fault { idx });
            shard.index.push(Reverse((when, node.as_raw())));
        }
    }

    /// Rejects adversary schedules. Partition cuts and Byzantine injection
    /// consult globally ordered state (cross-cut link sweeps, one adversary
    /// RNG stream, the sniff ring) that has no shard-local representation
    /// yet, so — exactly like loss bursts — a sharded run refuses the plan
    /// instead of silently diverging from the sequential world. Use the
    /// sequential [`World`](crate::world::World) for adversarial scenarios.
    pub fn install_adversary_plan(&mut self, plan: &crate::adversary::AdversaryPlan) {
        assert!(
            plan.is_empty(),
            "sharded world does not support adversary plans (partitions and byzantine injection are sequential-only)"
        );
    }

    /// Runs until `deadline` (inclusive of every event strictly before it),
    /// advancing in lookahead windows and executing shards on parallel
    /// threads. Repeated calls continue deterministically; results depend
    /// only on the seed and the sequence of run calls, never on shard count.
    pub fn run_until(&mut self, deadline: SimTime) {
        while self.now < deadline {
            let t1 = (self.now + self.window).min(deadline);
            let min_pending = self
                .shards
                .iter()
                .filter_map(|s| s.index.peek().map(|&Reverse((t, _))| t))
                .min();
            let idle = match min_pending {
                None => true,
                Some(t) => t >= t1,
            };
            if !idle {
                let span = self.profiler.begin();
                self.rebuild_snapshot();
                self.profiler.end(Phase::Snapshot, span);
                let span = self.profiler.begin();
                self.grid.rebuild(self.now, &self.plans, &self.snapshot);
                self.profiler.end(Phase::GridRefresh, span);
                let view = GlobalView {
                    radio: &self.config.radio,
                    plans: &self.plans,
                    snapshot: &self.snapshot,
                    grid: &self.grid,
                    window_end: t1,
                    link_check_interval: self.config.link_check_interval,
                    query_pad_m: self.config.max_speed_mps * self.window.as_secs_f64() + QUERY_PAD_M,
                };
                let span = self.profiler.begin();
                if self.shards.len() == 1 {
                    self.shards[0].run_window(&view);
                } else {
                    std::thread::scope(|scope| {
                        for shard in self.shards.iter_mut() {
                            let view = &view;
                            scope.spawn(move || shard.run_window(view));
                        }
                    });
                }
                self.profiler.end(Phase::ShardWindows, span);
                let span = self.profiler.begin();
                self.barrier(t1);
                self.profiler.end(Phase::BarrierMerge, span);
            }
            self.now = t1;
            if self.telemetry.is_some() {
                self.sample_telemetry();
            }
        }
        self.assemble();
    }

    /// Runs for `duration` from the current time.
    pub fn run_for(&mut self, duration: SimDuration) {
        self.run_until(self.now + duration);
    }

    /// Folds per-node state into the aggregate series and emits a frame if a
    /// sample boundary was crossed. Every folded quantity is a commutative
    /// sum (or histogram merge) over node state at the barrier, and node
    /// state at a barrier does not depend on the shard layout, so the
    /// recorded series are identical at any shard count.
    fn sample_telemetry(&mut self) {
        let due = self.telemetry.as_ref().map(|t| t.due(self.now)).unwrap_or(false);
        if !due {
            return;
        }
        let mut alive = 0u64;
        let mut open_halves = 0u64;
        let mut global = Counters::default();
        let mut stats = FaultStats::default();
        let mut tech_msgs = [(0u64, 0u64); 3];
        let mut payload = Histogram::new(PAYLOAD_SIZE_BOUNDS);
        for shard in &self.shards {
            for node in shard.nodes.iter().filter_map(|n| n.as_deref()) {
                if node.alive {
                    alive += 1;
                }
                open_halves += node
                    .links
                    .values()
                    .filter(|half| matches!(half.status, LinkStatus::Open))
                    .count() as u64;
                global.merge(&node.counters);
                stats.crashes += node.stats.crashes;
                stats.restarts += node.stats.restarts;
                stats.radio_outages += node.stats.radio_outages;
            }
            for (idx, &(messages, bytes)) in shard.tech_msgs.iter().enumerate() {
                tech_msgs[idx].0 += messages;
                tech_msgs[idx].1 += bytes;
            }
            if let Some(hist) = shard.payload_hist.as_ref() {
                payload.merge(hist);
            }
        }
        let now = self.now;
        let tel = self.telemetry.as_mut().expect("checked above");
        tel.set_gauge("world", "nodes_alive", None, alive as f64);
        tel.set_gauge("world", "links_open", None, open_halves as f64 / 2.0);
        tel.set_counter("world", "inquiries_started", None, global.inquiries_started);
        tel.set_counter("world", "inquiry_hits", None, global.inquiry_hits);
        tel.set_counter("world", "connect_attempts", None, global.connect_attempts);
        tel.set_counter("world", "connects_established", None, global.connects_established);
        tel.set_counter("world", "connect_failures", None, global.connect_failures);
        tel.set_counter("world", "messages_sent", None, global.messages_sent);
        tel.set_counter("world", "messages_delivered", None, global.messages_delivered);
        tel.set_counter("world", "messages_lost", None, global.messages_lost);
        tel.set_counter("world", "bytes_sent", None, global.bytes_sent);
        tel.set_counter("world", "links_broken", None, global.links_broken);
        tel.set_gauge("world", "delivery_rate", None, global.delivery_rate());
        tel.set_counter("faults", "node_crashes", None, stats.crashes);
        tel.set_counter("faults", "node_restarts", None, stats.restarts);
        tel.set_counter("faults", "radio_outages", None, stats.radio_outages);
        for (idx, &(msgs, bytes)) in tech_msgs.iter().enumerate() {
            if msgs == 0 && bytes == 0 {
                continue; // the old sparse map only carried touched techs
            }
            let label = TECH_BY_INDEX[idx].short_name();
            tel.set_counter("world", "messages_sent_tech", Some(label), msgs);
            tel.set_counter("world", "bytes_sent_tech", Some(label), bytes);
        }
        if payload.count() > 0 {
            tel.set_histogram("world", "payload_bytes", None, payload);
        }
        if self.shard_series {
            for (s, (&load, &occ)) in self.pstats.loads.iter().zip(&self.pstats.occupancy).enumerate() {
                let label = format!("s{s}");
                tel.set_gauge("shard", "load", Some(&label), load as f64);
                tel.set_gauge("shard", "occupancy", Some(&label), occ as f64);
            }
            tel.set_gauge("shard", "imbalance", None, self.pstats.last_imbalance);
            tel.set_counter("shard", "rebalances", None, self.pstats.rebalances);
        }
        tel.sample(now);
    }

    fn rebuild_snapshot(&mut self) {
        let ShardedWorld { shards, snapshot, .. } = self;
        for shard in shards.iter() {
            for (raw, slot) in shard.nodes.iter().enumerate() {
                if let Some(node) = slot.as_deref() {
                    snapshot[raw] = node.snapshot();
                }
            }
        }
    }

    /// The window barrier: fold the load model (and maybe re-cut the
    /// stripes), migrate ownership to the stripe containing each node's
    /// position at `t1`, then merge every outbox into the canonical
    /// `(time, origin, sequence)` order and deliver into the owning queues.
    fn barrier(&mut self, t1: SimTime) {
        let mut messages = std::mem::take(&mut self.merge_scratch);
        debug_assert!(messages.is_empty());
        for shard in &mut self.shards {
            messages.append(&mut shard.outbox);
        }
        if self.track_loads {
            self.fold_loads(t1);
        }
        if self.shards.len() > 1 {
            for raw in 0..self.plans.len() {
                let current = self.owner[raw];
                let target = self.stripe_of(self.plans[raw].position_at(t1));
                if target != current {
                    let node = self.shards[current as usize].nodes[raw].take().expect("owned");
                    if let Some(head) = node.queue.peek_time() {
                        self.shards[target as usize].index.push(Reverse((head, raw as u64)));
                    }
                    self.shards[target as usize].nodes[raw] = Some(node);
                    self.owner[raw] = target;
                }
            }
        }
        messages.sort_unstable_by_key(|m| (m.at, m.origin.as_raw(), m.seq));
        for msg in messages.drain(..) {
            let raw = msg.to.as_raw() as usize;
            let shard = self.owner[raw] as usize;
            let node = self.shards[shard].nodes[raw].as_deref_mut().expect("owned");
            node.queue.schedule(
                msg.at,
                NodeEvent::Inbox {
                    origin: msg.origin,
                    body: msg.body,
                },
            );
            self.shards[shard].index.push(Reverse((msg.at, msg.to.as_raw())));
        }
        self.merge_scratch = messages;
    }

    /// Folds the per-shard load model for the window that just ended and,
    /// when adaptivity is on and the hysteresis gate fires, re-cuts the
    /// stripe boundaries along the weighted prefix sum of the density
    /// histogram. Every input is pure simulation state — per-node event
    /// counts (layout-invariant), node counts and motion-plan positions at
    /// `t1`, folded in canonical shard/node order — so the cut sequence is a
    /// deterministic function of seed + state: never wall clock, thread
    /// identity, or iteration order of any hash table.
    fn fold_loads(&mut self, t1: SimTime) {
        let ShardedWorld {
            shards,
            plans,
            pstats,
            density,
            ..
        } = self;
        let shard_count = shards.len();
        pstats.loads.clear();
        pstats.loads.resize(shard_count, 0);
        pstats.occupancy.clear();
        pstats.occupancy.resize(shard_count, 0);
        density.clear();
        for (s, shard) in shards.iter_mut().enumerate() {
            for (raw, slot) in shard.nodes.iter_mut().enumerate() {
                let Some(node) = slot.as_deref_mut() else { continue };
                let weight = 1 + node.window_events;
                node.window_events = 0;
                pstats.loads[s] += weight;
                pstats.occupancy[s] += 1;
                density.record(plans[raw].position_at(t1).x, weight);
            }
        }
        pstats.windows += 1;
        pstats.last_imbalance = imbalance(&pstats.loads);
        if self.config.adaptive.enabled && shard_count > 1 && self.gate.observe(pstats.last_imbalance) {
            density.cut_into(shard_count, &mut self.cuts_scratch);
            self.partition.set_cuts(&self.cuts_scratch);
            pstats.rebalances += 1;
        }
    }

    /// Rebuilds the aggregated metrics, fault stats and lifecycle stream
    /// from the per-node tallies. Sums are commutative and the lifecycle is
    /// sorted canonically, so the result is independent of shard layout.
    fn assemble(&mut self) {
        self.metrics.reset();
        self.stats = FaultStats::default();
        self.lifecycle.clear();
        for shard in &self.shards {
            for node in shard.nodes.iter().filter_map(|n| n.as_deref()) {
                self.metrics.absorb_node(node.id, &node.counters);
                self.stats.crashes += node.stats.crashes;
                self.stats.restarts += node.stats.restarts;
                self.stats.radio_outages += node.stats.radio_outages;
                self.stats.radio_restores += node.stats.radio_restores;
                self.lifecycle.extend(node.lifecycle.iter().copied());
            }
            for (idx, &(messages, bytes)) in shard.tech_msgs.iter().enumerate() {
                if messages != 0 || bytes != 0 {
                    self.metrics.absorb_tech(TECH_BY_INDEX[idx], messages, bytes);
                }
            }
        }
        // Stable sort: each node's events are already time-ordered, so
        // (time, node) yields the canonical merged stream.
        self.lifecycle.sort_by_key(|e| (e.at, e.node.as_raw()));
    }

    /// Runs `f` against the node's agent downcast to `A`. Returns `None` if
    /// the node does not exist or its agent is not an `A`.
    pub fn with_agent<A: ShardAgent, R>(&mut self, node: NodeId, f: impl FnOnce(&mut A) -> R) -> Option<R> {
        let raw = node.as_raw() as usize;
        let shard = *self.owner.get(raw)? as usize;
        let slot = self.shards[shard].nodes[raw].as_deref_mut()?;
        let agent = slot.agent.as_mut()?;
        agent.as_any_mut().downcast_mut::<A>().map(f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const HELLO: TimerToken = TimerToken(0x5EED);

    /// A minimal exercise agent: scans once, connects to the first hit,
    /// pings, echoes, closes after the echo.
    #[derive(Default)]
    struct Chatter {
        hits: usize,
        got: Vec<Vec<u8>>,
        connected: u32,
        disconnects: Vec<DisconnectReason>,
    }

    impl ShardAgent for Chatter {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn on_start(&mut self, ctx: &mut ShardCtx<'_>) {
            if ctx.node_id().as_raw() == 0 {
                ctx.schedule(SimDuration::from_millis(100), HELLO);
            }
        }
        fn on_timer(&mut self, ctx: &mut ShardCtx<'_>, _token: TimerToken) {
            ctx.start_inquiry(RadioTech::Wlan);
        }
        fn on_inquiry_complete(&mut self, ctx: &mut ShardCtx<'_>, _tech: RadioTech, hits: Vec<InquiryHit>) {
            self.hits = hits.len();
            if let Some(hit) = hits.first() {
                ctx.connect(hit.node, RadioTech::Wlan);
            }
        }
        fn on_incoming_connection(&mut self, _ctx: &mut ShardCtx<'_>, _incoming: IncomingConnection) -> bool {
            true
        }
        fn on_connected(
            &mut self,
            ctx: &mut ShardCtx<'_>,
            _attempt: AttemptId,
            link: LinkId,
            _peer: NodeId,
            _tech: RadioTech,
        ) {
            self.connected += 1;
            ctx.send(link, b"ping".to_vec()).unwrap();
        }
        fn on_message(&mut self, ctx: &mut ShardCtx<'_>, link: LinkId, _from: NodeId, payload: SharedPayload) {
            self.got.push(payload.to_vec());
            if payload.as_slice() == b"ping" {
                ctx.send(link, b"pong".to_vec()).unwrap();
            } else {
                ctx.close(link);
            }
        }
        fn on_disconnected(&mut self, _ctx: &mut ShardCtx<'_>, _link: LinkId, _peer: NodeId, reason: DisconnectReason) {
            self.disconnects.push(reason);
        }
    }

    fn two_node_world(shards: usize) -> ShardedWorld {
        let mut config = ShardedConfig::new(42, Rect::square(100.0));
        config.shards = shards;
        // The exercise asserts an exact event sequence; keep the WLAN
        // handshake free of random setup faults.
        config.radio.wlan.setup_fault_prob = 0.0;
        config.radio.wlan.inquiry_miss_prob = 0.0;
        let mut world = ShardedWorld::new(config);
        world.add_node(
            "a",
            MobilityModel::stationary(Point::new(10.0, 50.0)),
            &[RadioTech::Wlan],
            Box::new(Chatter::default()),
        );
        world.add_node(
            "b",
            MobilityModel::stationary(Point::new(20.0, 50.0)),
            &[RadioTech::Wlan],
            Box::new(Chatter::default()),
        );
        world
    }

    #[test]
    fn connect_message_close_roundtrip() {
        let mut world = two_node_world(1);
        world.run_for(SimDuration::from_secs(30));
        let a = NodeId::from_raw(0);
        let b = NodeId::from_raw(1);
        assert_eq!(world.with_agent::<Chatter, _>(a, |c| c.hits).unwrap(), 1);
        assert_eq!(world.with_agent::<Chatter, _>(a, |c| c.connected).unwrap(), 1);
        // b echoed the ping, a closed after the pong.
        assert_eq!(
            world.with_agent::<Chatter, _>(b, |c| c.got.clone()).unwrap(),
            vec![b"ping".to_vec()]
        );
        assert_eq!(
            world.with_agent::<Chatter, _>(a, |c| c.got.clone()).unwrap(),
            vec![b"pong".to_vec()]
        );
        assert_eq!(
            world.with_agent::<Chatter, _>(a, |c| c.disconnects.clone()).unwrap(),
            vec![DisconnectReason::LocalClosed]
        );
        assert_eq!(
            world.with_agent::<Chatter, _>(b, |c| c.disconnects.clone()).unwrap(),
            vec![DisconnectReason::PeerClosed]
        );
        let g = world.metrics().global();
        assert_eq!(g.connects_established, 1);
        assert_eq!(g.messages_sent, 2);
        assert_eq!(g.messages_delivered, 2);
        assert_eq!(g.messages_lost, 0);
        assert_eq!(world.metrics().messages_for_tech(RadioTech::Wlan), 2);
    }

    #[test]
    fn shard_count_does_not_change_outcomes() {
        let summarise = |shards: usize| {
            let mut world = two_node_world(shards);
            world.run_for(SimDuration::from_secs(30));
            let g = *world.metrics().global();
            let a = world
                .with_agent::<Chatter, _>(NodeId::from_raw(0), |c| (c.hits, c.got.clone()))
                .unwrap();
            (g, a)
        };
        let one = summarise(1);
        assert_eq!(one, summarise(2));
        assert_eq!(one, summarise(8));
    }

    #[test]
    fn crash_breaks_links_and_restart_reboots_the_agent() {
        let mut world = two_node_world(2);
        let b = NodeId::from_raw(1);
        let plan = FaultPlan::new()
            .crash_at(SimTime::from_secs(10))
            .restart_at(SimTime::from_secs(20));
        world.install_fault_plan(b, &plan);
        world.run_for(SimDuration::from_secs(30));
        assert_eq!(world.fault_stats().crashes, 1);
        assert_eq!(world.fault_stats().restarts, 1);
        assert!(world.is_alive(b));
        let kinds: Vec<LifecycleKind> = world.lifecycle_events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec![LifecycleKind::NodeDown, LifecycleKind::NodeUp]);
        // a held the link when b crashed: it must observe PeerFailed.
        let a_reasons = world
            .with_agent::<Chatter, _>(NodeId::from_raw(0), |c| c.disconnects.clone())
            .unwrap();
        assert!(
            a_reasons.contains(&DisconnectReason::PeerFailed) || a_reasons.contains(&DisconnectReason::LocalClosed),
            "a must have lost its link: {a_reasons:?}"
        );
    }

    #[test]
    #[should_panic(expected = "crash/restart/radio-outage")]
    fn loss_bursts_are_rejected() {
        let mut world = two_node_world(1);
        let plan = FaultPlan::new().loss_burst(SimTime::from_secs(1), SimTime::from_secs(2), 0.5, 0.0);
        world.install_fault_plan(NodeId::from_raw(0), &plan);
    }

    #[test]
    #[should_panic(expected = "does not support adversary plans")]
    fn adversary_plans_are_rejected() {
        let mut world = two_node_world(1);
        let plan = crate::adversary::AdversaryPlan::new().partition(
            SimTime::from_secs(1),
            SimTime::from_secs(2),
            [NodeId::from_raw(0)],
        );
        world.install_adversary_plan(&plan);
    }

    #[test]
    fn empty_adversary_plan_is_accepted_by_the_sharded_world() {
        let mut world = two_node_world(1);
        world.install_adversary_plan(&crate::adversary::AdversaryPlan::new());
        world.run_for(SimDuration::from_secs(1));
    }
}
