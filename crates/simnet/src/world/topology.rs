//! Node slots, positions and the spatial index.
//!
//! The topology layer owns every node's static identity (name, radios,
//! compiled motion plan, RNG stream, agent) and answers "who is where"
//! questions. Position lookups are pure reads of the compiled plans; the
//! [`SpatialGrid`] accelerates *radius* queries and is refreshed lazily
//! behind a `RefCell` so read-only world APIs keep their `&self` signatures.

use std::cell::RefCell;
use std::collections::{BTreeMap, BTreeSet};

use super::grid::SpatialGrid;
use crate::geometry::Point;
use crate::mobility::MotionPlan;
use crate::node::{NodeAgent, NodeId};
use crate::radio::RadioTech;
use crate::rng::SimRng;
use crate::time::SimTime;

/// Everything the world knows about one node.
pub(crate) struct NodeSlot {
    pub(crate) id: NodeId,
    pub(crate) name: String,
    pub(crate) plan: MotionPlan,
    pub(crate) techs: BTreeSet<RadioTech>,
    pub(crate) discoverable: BTreeSet<RadioTech>,
    pub(crate) inquiring_until: BTreeMap<RadioTech, SimTime>,
    pub(crate) agent: Option<Box<dyn NodeAgent>>,
    pub(crate) rng: SimRng,
    pub(crate) alive: bool,
    /// Radios currently forced dark by a fault (airplane mode). Disjoint
    /// from `discoverable`: an outage hides the node from inquiries and
    /// breaks its links regardless of the discoverability the agent chose.
    pub(crate) radio_off: BTreeSet<RadioTech>,
    /// Incarnation counter, bumped on every crash. Timers, inquiries and
    /// connection attempts record the epoch they were created in and are
    /// dropped when it no longer matches, so events from a previous life
    /// never leak into a restarted agent.
    pub(crate) epoch: u64,
}

/// The node table plus the spatial index over node positions.
pub(crate) struct Topology {
    pub(crate) nodes: Vec<NodeSlot>,
    grid: RefCell<SpatialGrid>,
}

impl Topology {
    pub(crate) fn new(grid_cell_m: f64) -> Self {
        Topology {
            nodes: Vec::new(),
            grid: RefCell::new(SpatialGrid::new(grid_cell_m)),
        }
    }

    /// Side length of one grid cell in metres.
    pub(crate) fn grid_cell_m(&self) -> f64 {
        self.grid.borrow().cell_m()
    }

    /// Adds a node (ids are dense and assigned in insertion order).
    pub(crate) fn add(&mut self, slot: NodeSlot, now: SimTime) {
        let id = slot.id;
        self.grid.get_mut().insert(id, &slot.plan, now);
        self.nodes.push(slot);
    }

    pub(crate) fn slot(&self, node: NodeId) -> Option<&NodeSlot> {
        self.nodes.get(node.as_raw() as usize)
    }

    pub(crate) fn slot_mut(&mut self, node: NodeId) -> Option<&mut NodeSlot> {
        self.nodes.get_mut(node.as_raw() as usize)
    }

    /// Position of a node at `now`, if the node exists.
    pub(crate) fn position_of(&self, node: NodeId, now: SimTime) -> Option<Point> {
        self.slot(node).map(|s| s.plan.position_at(now))
    }

    /// Marks a node dead, drops it from the spatial index and bumps its
    /// epoch so pending events from this life are discarded.
    pub(crate) fn power_off(&mut self, node: NodeId) {
        self.grid.get_mut().remove(node);
        if let Some(slot) = self.slot_mut(node) {
            slot.alive = false;
            slot.epoch += 1;
        }
    }

    /// Marks a crashed node alive again and re-enters it into the spatial
    /// index at its current planned position. Discoverability and inquiry
    /// bookkeeping reset to the fresh-node defaults; radio outages in force
    /// are kept (the fault schedule, not the reboot, ends them).
    pub(crate) fn power_on(&mut self, node: NodeId, now: SimTime) {
        let Some(slot) = self.nodes.get_mut(node.as_raw() as usize) else {
            return;
        };
        slot.alive = true;
        slot.discoverable = slot.techs.clone();
        slot.inquiring_until.clear();
        self.grid.get_mut().reinsert(node, &slot.plan, now);
    }

    /// Node ids in every grid cell intersecting the disk of `radius` metres
    /// around `center`, cleared into and returned through a caller-owned
    /// scratch `Vec` so the per-query candidate allocation disappears from
    /// the inquiry/neighbour hot paths. Results are sorted ascending: a
    /// superset of the nodes truly in range (callers apply the exact
    /// predicate), byte-identical to a full scan once filtered, because
    /// candidate order matches node-id order.
    pub(crate) fn candidates_within_into(&self, center: Point, radius: f64, now: SimTime, out: &mut Vec<NodeId>) {
        let mut grid = self.grid.borrow_mut();
        grid.refresh(now, |id| &self.nodes[id.as_raw() as usize].plan);
        grid.query_into(center, radius, out);
    }
}
