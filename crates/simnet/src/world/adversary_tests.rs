//! World-level tests of the adversary subsystem: partition windows (link
//! breaks, discovery suppression, delivery loss, heal) and Byzantine
//! tamper/inject behaviour through a test forge.

use std::any::Any;

use super::*;
use crate::adversary::{AdversaryPlan, FrameForge};
use crate::node::{ConnectError, DisconnectReason, IncomingConnection, InquiryHit};

#[derive(Default)]
struct Probe {
    inquiry_hits: Vec<Vec<NodeId>>,
    connected: Vec<(LinkId, NodeId)>,
    failed: Vec<ConnectError>,
    messages: Vec<Vec<u8>>,
    disconnects: Vec<(NodeId, DisconnectReason)>,
}

impl NodeAgent for Probe {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_inquiry_complete(&mut self, _ctx: &mut NodeCtx<'_>, _tech: RadioTech, hits: Vec<InquiryHit>) {
        self.inquiry_hits.push(hits.into_iter().map(|h| h.node).collect());
    }
    fn on_incoming_connection(&mut self, _ctx: &mut NodeCtx<'_>, _incoming: IncomingConnection) -> bool {
        true
    }
    fn on_connected(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        link: LinkId,
        peer: NodeId,
        _tech: RadioTech,
    ) {
        self.connected.push((link, peer));
    }
    fn on_connect_failed(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        _peer: NodeId,
        _tech: RadioTech,
        error: ConnectError,
    ) {
        self.failed.push(error);
    }
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, _link: LinkId, _from: NodeId, payload: Payload) {
        self.messages.push(payload.to_vec());
    }
    fn on_disconnected(&mut self, _ctx: &mut NodeCtx<'_>, _link: LinkId, peer: NodeId, reason: DisconnectReason) {
        self.disconnects.push((peer, reason));
    }
}

fn bt() -> [RadioTech; 1] {
    [RadioTech::Bluetooth]
}

fn add_probe(w: &mut World, name: &str, x: f64) -> NodeId {
    w.add_node(
        name,
        MobilityModel::stationary(Point::new(x, 0.0)),
        &bt(),
        Box::new(Probe::default()),
    )
}

fn connect_pair(w: &mut World, a: NodeId, b: NodeId) -> LinkId {
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(5));
    w.with_agent::<Probe, _>(a, |p, _| p.connected.last().map(|(l, _)| *l))
        .unwrap()
        .expect("pair must connect")
}

#[test]
fn partition_opening_breaks_links_across_the_cut_as_out_of_range() {
    let mut w = World::new(WorldConfig::ideal(3));
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    let c = add_probe(&mut w, "c", 8.0);
    w.run_for(SimDuration::from_secs(1));
    let cut_link = connect_pair(&mut w, a, b);
    let safe_link = connect_pair(&mut w, b, c);
    w.install_adversary_plan(AdversaryPlan::new().partition(SimTime::from_secs(30), SimTime::from_secs(60), [a]));
    w.run_for(SimDuration::from_secs(40));
    assert!(!w.link_info(cut_link).unwrap().open, "link across the cut breaks");
    assert!(w.link_info(safe_link).unwrap().open, "same-side link survives");
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.disconnects, vec![(b, DisconnectReason::OutOfRange)]);
    })
    .unwrap();
    let stats = w.adversary_stats();
    assert_eq!(stats.partitions_started, 1);
    assert_eq!(stats.cut_links_broken, 1);
    assert_eq!(stats.partitions_healed, 0, "window still open at t=41");
    assert!(w.partitioned(a, c));
    assert!(!w.partitioned(b, c));
}

#[test]
fn partition_suppresses_discovery_connects_and_delivery_until_heal() {
    let mut w = World::new(WorldConfig::ideal(4));
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    w.run_for(SimDuration::from_secs(1));
    w.install_adversary_plan(AdversaryPlan::new().partition(SimTime::from_secs(10), SimTime::from_secs(100), [a]));
    w.run_for(SimDuration::from_secs(20));

    // Discovery: the peer beyond the cut is invisible, both on the grid
    // path and in the ground-truth oracle.
    assert!(w.neighbors_in_range(a, RadioTech::Bluetooth).is_empty());
    assert!(w.neighbors_in_range_reference(a, RadioTech::Bluetooth).is_empty());
    w.with_agent::<Probe, _>(a, |_, ctx| ctx.start_inquiry(RadioTech::Bluetooth))
        .unwrap();
    w.run_for(SimDuration::from_secs(15));
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.inquiry_hits.last().unwrap().len(), 0, "no hits across the cut");
    })
    .unwrap();

    // Connects fail exactly like a range loss.
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.connect(b, RadioTech::Bluetooth);
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(5));
    w.with_agent::<Probe, _>(a, |p, _| {
        assert_eq!(p.failed, vec![ConnectError::OutOfRange]);
    })
    .unwrap();

    // After the heal the same connect succeeds and payloads flow again.
    w.run_until(SimTime::from_secs(110));
    let link = connect_pair(&mut w, a, b);
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.send(link, Payload::copy_from_slice(b"post-heal")).unwrap();
    })
    .unwrap();
    w.run_for(SimDuration::from_secs(2));
    w.with_agent::<Probe, _>(b, |p, _| {
        assert_eq!(p.messages, vec![b"post-heal".to_vec()]);
    })
    .unwrap();
    let stats = w.adversary_stats();
    assert_eq!(stats.partitions_healed, 1);
}

#[test]
fn in_flight_payloads_are_lost_across_an_active_cut() {
    let mut w = World::new(WorldConfig::ideal(5));
    let a = add_probe(&mut w, "a", 0.0);
    let b = add_probe(&mut w, "b", 5.0);
    w.run_for(SimDuration::from_secs(1));
    let link = connect_pair(&mut w, a, b);
    // The window opens in the same instant the payload is in flight: the
    // link-break sweep fires first (scheduled at the window start), so use a
    // window that opens while the payload travels.
    w.install_adversary_plan(AdversaryPlan::new().partition(SimTime::from_secs(50), SimTime::from_secs(60), [a]));
    w.run_until(SimTime::from_secs(49));
    // A large payload whose transmission crosses the window start.
    w.with_agent::<Probe, _>(a, |_, ctx| {
        ctx.send(link, Payload::copy_from_slice(&vec![0u8; 400_000])).unwrap();
    })
    .unwrap();
    w.run_until(SimTime::from_secs(70));
    w.with_agent::<Probe, _>(b, |p, _| {
        assert!(p.messages.is_empty(), "payload died at the cut");
    })
    .unwrap();
    let stats = w.adversary_stats();
    assert!(stats.partition_drops >= 1 || stats.cut_links_broken >= 1);
    assert_eq!(w.metrics().global().messages_delivered, 0);
}

struct TestForge;

impl FrameForge for TestForge {
    fn tamper(&mut self, _attacker: NodeId, payload: &Payload, _rng: &mut SimRng) -> Option<Payload> {
        let mut bytes = payload.to_vec();
        bytes.iter_mut().for_each(|b| *b ^= 0xAA);
        Some(bytes.into())
    }
    fn forge(&mut self, _attacker: NodeId, _peer: NodeId, _sniffed: &[Payload], _rng: &mut SimRng) -> Option<Payload> {
        Some(Payload::copy_from_slice(b"forged"))
    }
}

#[test]
fn compromised_node_tampers_and_injects_on_its_links() {
    let mut w = World::new(WorldConfig::ideal(6));
    let honest = add_probe(&mut w, "honest", 0.0);
    let attacker = add_probe(&mut w, "attacker", 5.0);
    w.run_for(SimDuration::from_secs(1));
    let link = connect_pair(&mut w, honest, attacker);
    w.set_frame_forge(Box::new(TestForge));
    w.install_adversary_plan(AdversaryPlan::new().compromise(
        attacker,
        SimTime::from_secs(10),
        SimTime::from_secs(40),
        SimDuration::from_secs(5),
    ));
    w.run_until(SimTime::from_secs(20));
    // Frames the attacker sends inside its window arrive tampered.
    w.with_agent::<Probe, _>(attacker, |_, ctx| {
        ctx.send(link, Payload::copy_from_slice(&[0x00, 0xFF])).unwrap();
    })
    .unwrap();
    // Honest frames toward the attacker are sniffed but not modified.
    w.with_agent::<Probe, _>(honest, |_, ctx| {
        ctx.send(link, Payload::copy_from_slice(b"clean")).unwrap();
    })
    .unwrap();
    w.run_until(SimTime::from_secs(60));
    w.with_agent::<Probe, _>(honest, |p, _| {
        assert!(
            p.messages.contains(&vec![0xAA, 0x55]),
            "attacker's frame arrived tampered: {:?}",
            p.messages
        );
        assert!(
            p.messages.iter().filter(|m| m.as_slice() == b"forged").count() >= 2,
            "periodic injections arrived: {:?}",
            p.messages
        );
    })
    .unwrap();
    w.with_agent::<Probe, _>(attacker, |p, _| {
        assert_eq!(p.messages, vec![b"clean".to_vec()], "honest frames pass untouched");
    })
    .unwrap();
    let stats = w.adversary_stats();
    assert_eq!(stats.frames_tampered, 1);
    assert!(stats.frames_injected >= 2, "stats: {stats:?}");
}

#[test]
fn adversarial_run_is_seed_deterministic() {
    let run = || {
        let mut w = World::new(WorldConfig::ideal(99));
        let a = add_probe(&mut w, "a", 0.0);
        let b = add_probe(&mut w, "b", 5.0);
        w.run_for(SimDuration::from_secs(1));
        let link = connect_pair(&mut w, a, b);
        w.set_frame_forge(Box::new(TestForge));
        w.install_adversary_plan(
            AdversaryPlan::new()
                .compromise(
                    b,
                    SimTime::from_secs(10),
                    SimTime::from_secs(50),
                    SimDuration::from_secs(3),
                )
                .partition(SimTime::from_secs(60), SimTime::from_secs(70), [a]),
        );
        w.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.send(link, Payload::copy_from_slice(b"x")).unwrap();
        })
        .unwrap();
        w.run_until(SimTime::from_secs(90));
        let msgs = w.with_agent::<Probe, _>(a, |p, _| p.messages.clone()).unwrap();
        (w.adversary_stats(), *w.metrics().global(), msgs)
    };
    assert_eq!(run(), run());
}
