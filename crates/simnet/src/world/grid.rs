//! A uniform spatial grid over node positions, keyed by mobility-aware
//! cell residency.
//!
//! Every node occupies exactly one square cell. Because trajectories are
//! compiled [`MotionPlan`]s, the exact instant a node leaves its current
//! cell is computable up front ([`MotionPlan::departure_time`]), so the
//! index re-buckets a node only when it actually crosses a cell boundary —
//! tracked by a refresh heap — instead of on every query. Stationary nodes
//! are bucketed once and never touched again.
//!
//! Range queries return a *superset* of the nodes within the radius (all
//! occupants of every cell intersecting the padded query disk, sorted by
//! node id); callers apply the exact range predicate themselves. This keeps
//! the grid a pure accelerator: results are byte-identical to a full scan.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashMap};

use crate::geometry::{Point, Rect};
use crate::mobility::MotionPlan;
use crate::node::NodeId;
use crate::time::{SimDuration, SimTime};

/// Slack added to every range query, in metres. It covers (a) nodes sitting
/// exactly on a cell boundary, where floating-point index arithmetic could
/// otherwise exclude their cell, and (b) the sub-microsecond drift a mobile
/// node can accumulate under the forced one-microsecond minimum residency.
/// Both effects are orders of magnitude below a millimetre.
const QUERY_PAD_M: f64 = 1e-3;

/// Minimum residency: a re-bucketed node is not reconsidered for at least
/// one simulation tick, guaranteeing refresh progress even when a node sits
/// exactly on a cell boundary.
const MIN_RESIDENCY: SimDuration = SimDuration::from_micros(1);

#[derive(Debug, Clone, Copy)]
struct Residency {
    cell: (i64, i64),
    valid_until: SimTime,
    generation: u64,
    tracked: bool,
}

/// The spatial index. One instance lives inside the world's topology layer.
#[derive(Debug)]
pub(crate) struct SpatialGrid {
    cell_m: f64,
    cells: HashMap<(i64, i64), Vec<NodeId>>,
    residency: Vec<Residency>,
    /// (valid_until, raw node id, generation) — min-heap of pending
    /// re-buckets. Entries whose generation no longer matches are stale.
    refresh: BinaryHeap<Reverse<(SimTime, u64, u64)>>,
}

impl SpatialGrid {
    pub(crate) fn new(cell_m: f64) -> Self {
        assert!(cell_m > 0.0 && cell_m.is_finite(), "invalid grid cell size: {cell_m}");
        SpatialGrid {
            cell_m,
            cells: HashMap::new(),
            residency: Vec::new(),
            refresh: BinaryHeap::new(),
        }
    }

    /// Side length of one cell in metres.
    pub(crate) fn cell_m(&self) -> f64 {
        self.cell_m
    }

    fn cell_of(&self, p: Point) -> (i64, i64) {
        ((p.x / self.cell_m).floor() as i64, (p.y / self.cell_m).floor() as i64)
    }

    fn cell_rect(&self, cell: (i64, i64)) -> Rect {
        let (i, j) = cell;
        Rect::new(
            i as f64 * self.cell_m,
            j as f64 * self.cell_m,
            (i + 1) as f64 * self.cell_m,
            (j + 1) as f64 * self.cell_m,
        )
    }

    /// Starts tracking a node. Node ids are dense, so insertion order must
    /// match id order (enforced by the topology layer).
    pub(crate) fn insert(&mut self, node: NodeId, plan: &MotionPlan, now: SimTime) {
        let raw = node.as_raw() as usize;
        assert_eq!(raw, self.residency.len(), "grid insertions must follow node id order");
        self.residency.push(Residency {
            cell: (0, 0),
            valid_until: SimTime::ZERO,
            generation: 0,
            tracked: true,
        });
        let cell = self.cell_of(plan.position_at(now));
        self.cells.entry(cell).or_default().push(node);
        self.rebucket(node, cell, plan, now);
    }

    /// Stops tracking a node (powered off). Its bucket entry is removed so
    /// queries no longer return it.
    pub(crate) fn remove(&mut self, node: NodeId) {
        let raw = node.as_raw() as usize;
        let Some(r) = self.residency.get_mut(raw) else {
            return;
        };
        if !r.tracked {
            return;
        }
        r.tracked = false;
        r.generation += 1;
        let cell = r.cell;
        self.remove_from_bucket(cell, node);
    }

    /// Resumes tracking a node previously dropped by [`SpatialGrid::remove`]
    /// (a crashed node powering back on): buckets it at its current position
    /// and re-enters it into the refresh cycle. No-op while still tracked.
    pub(crate) fn reinsert(&mut self, node: NodeId, plan: &MotionPlan, now: SimTime) {
        let raw = node.as_raw() as usize;
        let Some(r) = self.residency.get_mut(raw) else {
            return;
        };
        if r.tracked {
            return;
        }
        r.tracked = true;
        let cell = self.cell_of(plan.position_at(now));
        self.cells.entry(cell).or_default().push(node);
        self.rebucket(node, cell, plan, now);
    }

    fn remove_from_bucket(&mut self, cell: (i64, i64), node: NodeId) {
        if let Some(bucket) = self.cells.get_mut(&cell) {
            if let Some(pos) = bucket.iter().position(|n| *n == node) {
                bucket.swap_remove(pos);
            }
            if bucket.is_empty() {
                self.cells.remove(&cell);
            }
        }
    }

    /// Records `cell` as the node's residency and schedules the next refresh
    /// at the moment its plan leaves that cell.
    fn rebucket(&mut self, node: NodeId, cell: (i64, i64), plan: &MotionPlan, now: SimTime) {
        let raw = node.as_raw() as usize;
        let rect = self.cell_rect(cell);
        let valid_until = match plan.departure_time(rect, now) {
            None => SimTime::MAX,
            Some(t) => t.max(now + MIN_RESIDENCY),
        };
        let r = &mut self.residency[raw];
        r.cell = cell;
        r.valid_until = valid_until;
        r.generation += 1;
        if valid_until != SimTime::MAX {
            self.refresh.push(Reverse((valid_until, node.as_raw(), r.generation)));
        }
    }

    /// Re-buckets every node whose residency expired at or before `now`.
    /// Must run before any query so recorded cells stay a superset bound on
    /// true positions. `plan_of` resolves a node's compiled trajectory.
    pub(crate) fn refresh<'a>(&mut self, now: SimTime, plan_of: impl Fn(NodeId) -> &'a MotionPlan) {
        while let Some(&Reverse((due, raw, generation))) = self.refresh.peek() {
            if due > now {
                break;
            }
            self.refresh.pop();
            let r = self.residency[raw as usize];
            if !r.tracked || r.generation != generation {
                continue; // stale entry: the node moved buckets or was removed
            }
            let node = NodeId::from_raw(raw);
            let plan = plan_of(node);
            let cell = self.cell_of(plan.position_at(now));
            if cell != r.cell {
                self.remove_from_bucket(r.cell, node);
                self.cells.entry(cell).or_default().push(node);
            }
            self.rebucket(node, cell, plan, now);
        }
    }

    /// All tracked nodes in cells intersecting the disk of `radius` metres
    /// around `center`, sorted by node id. A superset of the nodes truly
    /// within the radius; callers must still apply the exact range test.
    /// Production paths go through [`SpatialGrid::query_into`]; this
    /// allocating convenience form remains for the unit tests.
    #[cfg(test)]
    pub(crate) fn query(&self, center: Point, radius: f64) -> Vec<NodeId> {
        let mut out = Vec::new();
        self.query_into(center, radius, &mut out);
        out
    }

    /// Like [`SpatialGrid::query`], but appends into a caller-owned scratch
    /// buffer (cleared first) so hot paths — every inquiry and neighbour
    /// lookup at 100k nodes — reuse one allocation instead of building a
    /// fresh candidate `Vec` per query. Contents are identical to `query`.
    pub(crate) fn query_into(&self, center: Point, radius: f64, out: &mut Vec<NodeId>) {
        out.clear();
        let r = radius + QUERY_PAD_M;
        let ix_min = ((center.x - r) / self.cell_m).floor() as i64;
        let ix_max = ((center.x + r) / self.cell_m).floor() as i64;
        let iy_min = ((center.y - r) / self.cell_m).floor() as i64;
        let iy_max = ((center.y + r) / self.cell_m).floor() as i64;
        for i in ix_min..=ix_max {
            for j in iy_min..=iy_max {
                if let Some(bucket) = self.cells.get(&(i, j)) {
                    out.extend_from_slice(bucket);
                }
            }
        }
        // Each node lives in exactly one bucket, so sorting suffices for a
        // deterministic, duplicate-free result.
        out.sort_unstable();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::MobilityModel;
    use crate::rng::SimRng;

    fn plan_fixed(p: Point) -> MotionPlan {
        MotionPlan::fixed(p)
    }

    #[test]
    fn stationary_nodes_are_bucketed_once() {
        let mut g = SpatialGrid::new(10.0);
        let plans = [plan_fixed(Point::new(5.0, 5.0)), plan_fixed(Point::new(55.0, 5.0))];
        g.insert(NodeId::from_raw(0), &plans[0], SimTime::ZERO);
        g.insert(NodeId::from_raw(1), &plans[1], SimTime::ZERO);
        assert!(g.refresh.is_empty(), "stationary nodes never need refreshing");
        let near = g.query(Point::new(0.0, 0.0), 12.0);
        assert_eq!(near, vec![NodeId::from_raw(0)]);
        let all = g.query(Point::new(30.0, 5.0), 40.0);
        assert_eq!(all, vec![NodeId::from_raw(0), NodeId::from_raw(1)]);
    }

    #[test]
    fn mobile_node_moves_between_buckets() {
        let mut g = SpatialGrid::new(10.0);
        let m = MobilityModel::walk(Point::new(5.0, 5.0), Point::new(95.0, 5.0), 1.0);
        let plan = m.compile(SimTime::from_secs(1000), &mut SimRng::new(1));
        g.insert(NodeId::from_raw(0), &plan, SimTime::ZERO);
        // At t=0 the node is near the origin.
        assert_eq!(g.query(Point::new(0.0, 0.0), 10.0).len(), 1);
        // At t=60 it has walked 60 m; refresh and query there.
        let t = SimTime::from_secs(60);
        g.refresh(t, |_| &plan);
        assert!(g.query(Point::new(0.0, 0.0), 10.0).is_empty());
        assert_eq!(g.query(Point::new(65.0, 5.0), 10.0).len(), 1);
    }

    #[test]
    fn removed_nodes_disappear_from_queries() {
        let mut g = SpatialGrid::new(10.0);
        let plan = plan_fixed(Point::new(5.0, 5.0));
        g.insert(NodeId::from_raw(0), &plan, SimTime::ZERO);
        g.remove(NodeId::from_raw(0));
        assert!(g.query(Point::new(5.0, 5.0), 10.0).is_empty());
    }

    #[test]
    fn boundary_node_is_still_found() {
        let mut g = SpatialGrid::new(10.0);
        // Exactly on a cell boundary.
        let plan = plan_fixed(Point::new(10.0, 10.0));
        g.insert(NodeId::from_raw(0), &plan, SimTime::ZERO);
        // Query disk whose edge touches the node exactly.
        assert_eq!(g.query(Point::new(20.0, 10.0), 10.0).len(), 1);
        assert_eq!(g.query(Point::new(0.0, 10.0), 10.0).len(), 1);
    }

    #[test]
    fn query_is_superset_of_true_range_under_mobility() {
        let mut g = SpatialGrid::new(10.0);
        let mut plans = Vec::new();
        let mut rng = SimRng::new(7);
        for i in 0..100u64 {
            let m = MobilityModel::RandomWaypoint {
                area: Rect::square(200.0),
                start: Point::new(rng.uniform_f64(0.0, 200.0), rng.uniform_f64(0.0, 200.0)),
                min_speed_mps: 0.5,
                max_speed_mps: 3.0,
                pause: SimDuration::from_secs(2),
            };
            plans.push(m.compile(SimTime::from_secs(600), &mut rng));
            let plan = plans.last().unwrap();
            g.insert(NodeId::from_raw(i), plan, SimTime::ZERO);
        }
        let center = Point::new(100.0, 100.0);
        for s in (0..600).step_by(7) {
            let t = SimTime::from_secs(s);
            g.refresh(t, |n| &plans[n.as_raw() as usize]);
            let got = g.query(center, 25.0);
            for (i, plan) in plans.iter().enumerate() {
                let within = plan.position_at(t).distance(center) <= 25.0;
                if within {
                    assert!(
                        got.contains(&NodeId::from_raw(i as u64)),
                        "node {i} within range at t={s}s but missing from grid query"
                    );
                }
            }
        }
    }
}
