//! Density-adaptive stripe partitioning for the sharded world.
//!
//! PR 7's [`ShardedWorld`](super::shard::ShardedWorld) cuts the simulated
//! area into vertical stripes of **equal width**. That is the right default
//! for a uniformly populated city, but a flash crowd converging on one
//! district piles most nodes — and most events — onto one shard while the
//! others idle at every window barrier: parallel speedup is bounded by the
//! most loaded worker, not the mean. This module supplies the three pieces
//! that make the partition *adaptive*, each a pure function of simulation
//! state so the decision sequence is a deterministic property of the run:
//!
//! * [`DensityHistogram`] — a coarse, weighted histogram of node positions
//!   along the stripe axis, rebuilt at each window barrier from per-node
//!   load weights (`1 + events processed this window`).
//! * [`PartitionMap`] — the stripe boundaries themselves plus the
//!   position→stripe lookup, replacing the fixed equal-width formula.
//! * [`HysteresisController`] — the gate that triggers a re-cut only after
//!   the measured imbalance has exceeded a threshold for K *consecutive*
//!   windows, so steady cities never pay migration or re-cut costs.
//!
//! None of this can affect simulation results: the partition decides which
//! thread executes a node, never what the node observes (the PR 7
//! invariant), and every input to the cut — positions from compiled motion
//! plans, per-node event counts — is itself independent of the shard
//! layout. Boundaries are therefore a function of seed + state alone:
//! traces stay byte-identical at any shard count with adaptivity on or
//! off, and even the rebalance *decisions* replay identically run-to-run.

/// Tuning knobs for density-adaptive sharding, carried by
/// [`ShardedConfig`](super::shard::ShardedConfig).
#[derive(Debug, Clone)]
pub struct AdaptiveShards {
    /// Master switch. Off (the default) keeps PR 7's fixed equal-width
    /// stripes bit-for-bit.
    pub enabled: bool,
    /// Rebalance only while `max(shard load) / mean(shard load)` exceeds
    /// this ratio. 1.0 would chase noise; the default tolerates 25% skew.
    pub imbalance_threshold: f64,
    /// Consecutive over-threshold windows required before a re-cut — the
    /// hysteresis that keeps transient spikes from thrashing the partition.
    pub patience: u32,
    /// Bins of the density histogram along the stripe axis. More bins cut
    /// more precisely; the barrier fold is O(nodes) either way.
    pub bins: usize,
}

impl Default for AdaptiveShards {
    fn default() -> Self {
        AdaptiveShards {
            enabled: false,
            imbalance_threshold: 1.25,
            patience: 3,
            bins: 256,
        }
    }
}

impl AdaptiveShards {
    /// Adaptive sharding with the default knobs switched on.
    pub fn on() -> Self {
        AdaptiveShards {
            enabled: true,
            ..AdaptiveShards::default()
        }
    }
}

/// The stripe boundaries of a sharded world: `cuts.len() + 1` vertical
/// stripes over `[min_x, max_x]`, where interior boundary `i` separates
/// stripe `i` from stripe `i + 1`. A node at `x` belongs to the stripe
/// whose half-open interval `[cut[i-1], cut[i])` contains it.
#[derive(Debug, Clone)]
pub struct PartitionMap {
    min_x: f64,
    max_x: f64,
    cuts: Vec<f64>,
}

impl PartitionMap {
    /// Equal-width stripes — the PR 7 layout and the starting point of
    /// every adaptive run.
    pub fn uniform(min_x: f64, max_x: f64, shards: usize) -> Self {
        let shards = shards.max(1);
        let width = (max_x - min_x).max(f64::MIN_POSITIVE);
        let cuts = (1..shards).map(|i| min_x + width * i as f64 / shards as f64).collect();
        PartitionMap { min_x, max_x, cuts }
    }

    /// Number of stripes.
    pub fn shards(&self) -> usize {
        self.cuts.len() + 1
    }

    /// The interior boundaries, ascending (empty for a single stripe).
    pub fn cuts(&self) -> &[f64] {
        &self.cuts
    }

    /// The stripe containing `x`. Positions outside `[min_x, max_x]` clamp
    /// to the first/last stripe.
    pub fn stripe_of(&self, x: f64) -> u32 {
        self.cuts.partition_point(|&c| x >= c) as u32
    }

    /// Replaces the interior boundaries with a freshly computed cut. The
    /// new cut must preserve the stripe count and be monotone.
    pub fn set_cuts(&mut self, cuts: &[f64]) {
        debug_assert_eq!(cuts.len(), self.cuts.len(), "stripe count must not change");
        debug_assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "cuts must be ascending");
        self.cuts.clear();
        self.cuts.extend(cuts.iter().map(|&c| c.clamp(self.min_x, self.max_x)));
    }
}

/// A coarse weighted histogram of node positions along the stripe axis,
/// folded at window barriers and consumed by [`DensityHistogram::cut_into`].
#[derive(Debug, Clone)]
pub struct DensityHistogram {
    min_x: f64,
    bin_w: f64,
    bins: Vec<u64>,
    total: u64,
}

impl DensityHistogram {
    /// An empty histogram of `bins` equal-width bins over `[min_x, max_x]`.
    pub fn new(min_x: f64, max_x: f64, bins: usize) -> Self {
        let bins = bins.max(1);
        let bin_w = ((max_x - min_x) / bins as f64).max(f64::MIN_POSITIVE);
        DensityHistogram {
            min_x,
            bin_w,
            bins: vec![0; bins],
            total: 0,
        }
    }

    /// Zeroes every bin, keeping the allocation.
    pub fn clear(&mut self) {
        self.bins.iter_mut().for_each(|b| *b = 0);
        self.total = 0;
    }

    /// Adds `weight` at position `x` (clamped into the outermost bins).
    pub fn record(&mut self, x: f64, weight: u64) {
        let idx = ((x - self.min_x) / self.bin_w) as i64;
        let idx = idx.clamp(0, self.bins.len() as i64 - 1) as usize;
        self.bins[idx] += weight;
        self.total += weight;
    }

    /// Total recorded weight.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Computes `shards - 1` interior boundaries so each stripe carries
    /// ~`total / shards` weight: a walk along the weighted prefix sum,
    /// placing boundary `k` where the cumulative weight crosses
    /// `k * total / shards` (linearly interpolated inside the crossing
    /// bin). Appends into `out` (cleared first) so callers reuse the
    /// allocation across rebalances. With zero total weight the cut
    /// degenerates to equal widths.
    pub fn cut_into(&self, shards: usize, out: &mut Vec<f64>) {
        out.clear();
        let shards = shards.max(1);
        if self.total == 0 {
            let width = self.bin_w * self.bins.len() as f64;
            out.extend((1..shards).map(|i| self.min_x + width * i as f64 / shards as f64));
            return;
        }
        let mut cum: u64 = 0;
        let mut bin = 0usize;
        for k in 1..shards {
            let target = (self.total as u128 * k as u128 / shards as u128) as u64;
            while bin < self.bins.len() && cum + self.bins[bin] < target {
                cum += self.bins[bin];
                bin += 1;
            }
            let cut = if bin >= self.bins.len() {
                self.min_x + self.bin_w * self.bins.len() as f64
            } else {
                let inside = (target - cum) as f64 / self.bins[bin].max(1) as f64;
                self.min_x + self.bin_w * (bin as f64 + inside)
            };
            // Targets ascend and the walk never backs up, so cuts are
            // monotone by construction; the max guards float round-off.
            out.push(out.last().map_or(cut, |&prev: &f64| cut.max(prev)));
        }
    }
}

/// Max-over-mean load imbalance of a shard layout: 1.0 is perfectly
/// balanced, 2.0 means the hottest shard carries twice the average. Empty
/// or zero-load layouts report 1.0 (nothing to balance).
pub fn imbalance(loads: &[u64]) -> f64 {
    if loads.len() <= 1 {
        return 1.0;
    }
    let total: u64 = loads.iter().sum();
    if total == 0 {
        return 1.0;
    }
    let max = *loads.iter().max().expect("non-empty") as f64;
    max * loads.len() as f64 / total as f64
}

/// The rebalance gate: fires only after the imbalance has exceeded the
/// threshold for `patience` *consecutive* observations, then re-arms.
#[derive(Debug, Clone)]
pub struct HysteresisController {
    threshold: f64,
    patience: u32,
    streak: u32,
}

impl HysteresisController {
    /// A controller with the given threshold and required streak length.
    pub fn new(threshold: f64, patience: u32) -> Self {
        HysteresisController {
            threshold,
            patience: patience.max(1),
            streak: 0,
        }
    }

    /// Feeds one window's imbalance; returns `true` when a rebalance is
    /// due. Any in-threshold window resets the streak, and a fired
    /// rebalance re-arms from zero.
    pub fn observe(&mut self, imbalance: f64) -> bool {
        if imbalance > self.threshold {
            self.streak += 1;
            if self.streak >= self.patience {
                self.streak = 0;
                return true;
            }
        } else {
            self.streak = 0;
        }
        false
    }

    /// Current consecutive over-threshold window count.
    pub fn streak(&self) -> u32 {
        self.streak
    }
}

/// Live partition diagnostics, updated at every non-idle window barrier
/// (only while load tracking is on: adaptivity enabled or `shard/*`
/// telemetry requested).
#[derive(Debug, Clone, Default)]
pub struct PartitionStats {
    /// Non-idle windows observed.
    pub windows: u64,
    /// Boundary re-cuts performed.
    pub rebalances: u64,
    /// Imbalance (max/mean shard load) of the last observed window.
    pub last_imbalance: f64,
    /// Per-shard load of the last window: owned nodes + events processed.
    pub loads: Vec<u64>,
    /// Per-shard owned-node count at the last barrier.
    pub occupancy: Vec<u64>,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_map_matches_equal_width_stripes() {
        let map = PartitionMap::uniform(0.0, 100.0, 4);
        assert_eq!(map.shards(), 4);
        assert_eq!(map.cuts(), &[25.0, 50.0, 75.0]);
        assert_eq!(map.stripe_of(0.0), 0);
        assert_eq!(map.stripe_of(24.999), 0);
        assert_eq!(map.stripe_of(25.0), 1);
        assert_eq!(map.stripe_of(99.9), 3);
        // Out-of-area positions clamp into the outer stripes.
        assert_eq!(map.stripe_of(-5.0), 0);
        assert_eq!(map.stripe_of(500.0), 3);
    }

    #[test]
    fn single_stripe_has_no_cuts() {
        let map = PartitionMap::uniform(0.0, 100.0, 1);
        assert_eq!(map.shards(), 1);
        assert!(map.cuts().is_empty());
        assert_eq!(map.stripe_of(99.0), 0);
    }

    #[test]
    fn prefix_sum_cut_equalises_uniform_weight() {
        let mut hist = DensityHistogram::new(0.0, 100.0, 100);
        for i in 0..100 {
            hist.record(i as f64 + 0.5, 1);
        }
        let mut cuts = Vec::new();
        hist.cut_into(4, &mut cuts);
        assert_eq!(cuts.len(), 3);
        for (cut, expect) in cuts.iter().zip([25.0, 50.0, 75.0]) {
            assert!((cut - expect).abs() < 1.5, "cut {cut} should sit near {expect}");
        }
    }

    #[test]
    fn prefix_sum_cut_narrows_the_hot_district() {
        // 90% of the weight lives in x ∈ [80, 90): adaptive cuts must pack
        // three of four stripes around the hotspot.
        let mut hist = DensityHistogram::new(0.0, 100.0, 100);
        for i in 0..10 {
            hist.record(i as f64 * 8.0, 1); // sparse left edge
        }
        for i in 0..90 {
            hist.record(80.0 + (i % 10) as f64, 1); // dense district
        }
        let mut cuts = Vec::new();
        hist.cut_into(4, &mut cuts);
        assert!(
            cuts[0] >= 75.0,
            "first cut {:.1} must sit at the district edge",
            cuts[0]
        );
        assert!(cuts.windows(2).all(|w| w[0] <= w[1]), "cuts must stay sorted");
        assert!(cuts.iter().all(|c| (0.0..=100.0).contains(c)));
    }

    #[test]
    fn degenerate_all_weight_in_one_cell_stays_monotone_and_bounded() {
        let mut hist = DensityHistogram::new(0.0, 100.0, 50);
        hist.record(42.0, 1_000);
        let mut cuts = Vec::new();
        hist.cut_into(8, &mut cuts);
        assert_eq!(cuts.len(), 7);
        assert!(
            cuts.windows(2).all(|w| w[0] <= w[1]),
            "cuts must be ascending: {cuts:?}"
        );
        // Every cut lands inside the hot bin [42, 44): stripes 1..7 are
        // (nearly) empty, which the ownership map handles fine.
        assert!(cuts.iter().all(|c| (40.0..=46.0).contains(c)), "{cuts:?}");
        let map = {
            let mut m = PartitionMap::uniform(0.0, 100.0, 8);
            m.set_cuts(&cuts);
            m
        };
        assert_eq!(map.stripe_of(0.0), 0);
        assert_eq!(map.stripe_of(99.0), 7);
    }

    #[test]
    fn empty_histogram_cuts_fall_back_to_equal_width() {
        let hist = DensityHistogram::new(0.0, 80.0, 16);
        let mut cuts = Vec::new();
        hist.cut_into(4, &mut cuts);
        assert_eq!(cuts, vec![20.0, 40.0, 60.0]);
    }

    #[test]
    fn imbalance_is_max_over_mean() {
        assert_eq!(imbalance(&[]), 1.0);
        assert_eq!(imbalance(&[7]), 1.0);
        assert_eq!(imbalance(&[0, 0, 0]), 1.0);
        assert_eq!(imbalance(&[10, 10, 10, 10]), 1.0);
        assert_eq!(imbalance(&[30, 10, 0, 0]), 3.0);
    }

    #[test]
    fn hysteresis_requires_consecutive_windows() {
        let mut gate = HysteresisController::new(1.25, 3);
        // Below threshold: never fires, streak stays down.
        for _ in 0..10 {
            assert!(!gate.observe(1.1));
        }
        // Interrupted streaks reset.
        assert!(!gate.observe(2.0));
        assert!(!gate.observe(2.0));
        assert!(!gate.observe(1.0));
        assert_eq!(gate.streak(), 0);
        // Three consecutive hot windows fire, then the gate re-arms.
        assert!(!gate.observe(2.0));
        assert!(!gate.observe(2.0));
        assert!(gate.observe(2.0));
        assert_eq!(gate.streak(), 0);
        assert!(!gate.observe(2.0));
    }

    #[test]
    fn boundary_exactly_at_threshold_does_not_fire() {
        let mut gate = HysteresisController::new(1.25, 1);
        assert!(!gate.observe(1.25), "threshold is exclusive");
        assert!(gate.observe(1.2500001));
    }
}
