//! Device discovery: inquiry completion and neighbourhood queries.
//!
//! For range-bounded technologies, candidate peers come from the spatial
//! grid index instead of a scan over every node in the world; the exact
//! filters (liveness, radio set, discoverability, the Bluetooth inquiry
//! asymmetry, the precise range predicate) then run on the candidate set.
//! Because grid candidates arrive sorted by node id — the same order the
//! full scan visited them — the surviving candidate list, and therefore
//! every RNG draw made while sampling misses and qualities, is identical to
//! the pre-index implementation. Infrastructure technologies (GPRS) have no
//! radius to bound the query with and keep the full scan.

use super::World;
use crate::geometry::Point;
use crate::node::{InquiryHit, NodeId};
use crate::radio::{RadioProfile, RadioTech};
use crate::time::SimTime;

impl World {
    /// The radius to bound a grid query with, or `None` when the technology's
    /// coverage predicate is not radius-shaped and only the full scan is
    /// exact. GPRS coverage is decided by dead zones regardless of distance
    /// (even if someone configures a finite `range_m` on its profile), so it
    /// never uses the grid.
    fn grid_query_radius(&self, tech: RadioTech) -> Option<f64> {
        if tech == RadioTech::Gprs {
            return None;
        }
        self.config.radio.profile(tech).range_m
    }

    /// Ground-truth list of nodes within radio range of `node` for `tech`
    /// (regardless of discoverability, but excluding nodes whose radio a
    /// fault has forced dark — they cannot communicate at all). Used by
    /// experiments that need the true topology to compare discovery results
    /// against. Empty when `node` itself is crashed or its radio is dark.
    pub fn neighbors_in_range(&self, node: NodeId, tech: RadioTech) -> Vec<NodeId> {
        let pos = match self.position_of(node) {
            Some(p) => p,
            None => return Vec::new(),
        };
        if !self.radio_enabled(node, tech) {
            return Vec::new();
        }
        let range = match self.grid_query_radius(tech) {
            Some(r) => r,
            None => return self.neighbors_in_range_reference(node, tech),
        };
        let mut scratch = self.candidate_scratch.borrow_mut();
        self.topology.candidates_within_into(pos, range, self.now, &mut scratch);
        scratch
            .iter()
            .copied()
            .filter(|id| *id != node)
            .filter(|id| !(self.adversary.has_partitions() && self.adversary.partitioned(node, *id, self.now)))
            .filter(|id| {
                self.topology
                    .slot(*id)
                    .map(|other| {
                        other.alive
                            && other.techs.contains(&tech)
                            && !other.radio_off.contains(&tech)
                            && self.pair_in_range(pos, other.plan.position_at(self.now), tech)
                    })
                    .unwrap_or(false)
            })
            .collect()
    }

    /// Reference implementation of [`World::neighbors_in_range`] that scans
    /// every node instead of consulting the spatial index. Kept as the
    /// oracle the determinism tests and the `world_scale` bench compare the
    /// grid path against; results are always identical.
    pub fn neighbors_in_range_reference(&self, node: NodeId, tech: RadioTech) -> Vec<NodeId> {
        let pos = match self.position_of(node) {
            Some(p) => p,
            None => return Vec::new(),
        };
        if !self.radio_enabled(node, tech) {
            return Vec::new();
        }
        self.topology
            .nodes
            .iter()
            .filter(|other| {
                other.id != node && other.alive && other.techs.contains(&tech) && !other.radio_off.contains(&tech)
            })
            .filter(|other| !(self.adversary.has_partitions() && self.adversary.partitioned(node, other.id, self.now)))
            .filter(|other| self.pair_in_range(pos, other.plan.position_at(self.now), tech))
            .map(|other| other.id)
            .collect()
    }

    pub(super) fn complete_inquiry(&mut self, node: NodeId, tech: RadioTech) {
        let pos = match self.position_of(node) {
            Some(p) => p,
            None => return,
        };
        if !self.is_alive(node) {
            return;
        }
        let profile = self.config.radio.profile(tech).clone();
        let now = self.now;

        // Collect candidate peers first (immutable pass), then sample
        // miss/quality with the inquirer's RNG. Candidates are ordered by
        // node id in both paths, so the RNG draw sequence is stable. An
        // inquirer whose own radio a fault forced dark scans into the void:
        // the completion callback still fires, with no hits.
        let candidates: Vec<(NodeId, f64)> = if !self.radio_enabled(node, tech) {
            Vec::new()
        } else {
            match self.grid_query_radius(tech) {
                Some(range) => self.inquiry_candidates_grid(node, pos, range, tech, &profile, now),
                None => self.inquiry_candidates_scan(node, pos, tech, &profile, now),
            }
        };

        let mut hits = Vec::new();
        {
            let slot = match self.slot_mut(node) {
                Some(s) => s,
                None => return,
            };
            for (peer, distance) in candidates {
                if slot.rng.chance(profile.inquiry_miss_prob) {
                    continue;
                }
                if let Some(quality) = profile.sample_quality(distance, &mut slot.rng) {
                    hits.push(InquiryHit {
                        node: peer,
                        tech,
                        quality,
                    });
                }
            }
            // The scan is over: the node becomes discoverable again.
            if let Some(until) = slot.inquiring_until.get(&tech).copied() {
                if until <= now {
                    slot.inquiring_until.remove(&tech);
                }
            }
        }
        self.metrics.record_inquiry_hits(node, hits.len() as u64);
        self.agent_call(node, |agent, ctx| agent.on_inquiry_complete(ctx, tech, hits));
    }

    /// True if `other` would answer an inquiry on `tech` at `now`: powered
    /// on, carrying and discoverable on the radio, and not itself mid-scan
    /// when the technology's inquiries are asymmetric (§3.4.2).
    fn answers_inquiry(
        other: &super::topology::NodeSlot,
        tech: RadioTech,
        profile: &RadioProfile,
        now: SimTime,
    ) -> bool {
        other.alive
            && other.techs.contains(&tech)
            && !other.radio_off.contains(&tech)
            && other.discoverable.contains(&tech)
            && !(profile.inquiry_asymmetric
                && other
                    .inquiring_until
                    .get(&tech)
                    .map(|until| *until > now)
                    .unwrap_or(false))
    }

    /// Inquiry candidates for a range-bounded technology, via the grid. The
    /// candidate superset lands in the world's reusable scratch buffer; only
    /// the surviving (id, distance) pairs are materialised.
    fn inquiry_candidates_grid(
        &self,
        node: NodeId,
        pos: Point,
        range: f64,
        tech: RadioTech,
        profile: &RadioProfile,
        now: SimTime,
    ) -> Vec<(NodeId, f64)> {
        let mut scratch = self.candidate_scratch.borrow_mut();
        let span = self.profiler().begin();
        self.topology.candidates_within_into(pos, range, now, &mut scratch);
        self.profiler().end(crate::telemetry::Phase::GridRefresh, span);
        scratch
            .iter()
            .copied()
            .filter(|id| *id != node)
            .filter(|id| !(self.adversary.has_partitions() && self.adversary.partitioned(node, *id, now)))
            .filter_map(|id| {
                let other = self.topology.slot(id)?;
                if !Self::answers_inquiry(other, tech, profile, now) {
                    return None;
                }
                let distance = pos.distance(other.plan.position_at(now));
                profile.in_range(distance).then_some((id, distance))
            })
            .collect()
    }

    /// Inquiry candidates for an infrastructure technology (no radius to
    /// bound a grid query): the full scan, with coverage decided by dead
    /// zones through [`World::pair_in_range`].
    fn inquiry_candidates_scan(
        &self,
        node: NodeId,
        pos: Point,
        tech: RadioTech,
        profile: &RadioProfile,
        now: SimTime,
    ) -> Vec<(NodeId, f64)> {
        self.topology
            .nodes
            .iter()
            .filter(|other| other.id != node && Self::answers_inquiry(other, tech, profile, now))
            .filter(|other| !(self.adversary.has_partitions() && self.adversary.partitioned(node, other.id, now)))
            .filter_map(|other| {
                let other_pos = other.plan.position_at(now);
                self.pair_in_range(pos, other_pos, tech)
                    .then(|| (other.id, pos.distance(other_pos)))
            })
            .collect()
    }
}
