//! Link bookkeeping: the active link table, the per-node link index, the
//! per-link in-flight index, pending connection attempts and retired-link
//! tombstones.
//!
//! Hot paths (`links_of`, the in-flight scan in disconnect ordering,
//! `crash_node`) are indexed so their cost scales with one node's links and
//! one link's in-flight messages instead of the world totals. A link whose
//! endpoints have both been notified of its closure and whose last in-flight
//! payload has drained is *retired*: its mutable [`LinkState`] is dropped and
//! replaced by a compact tombstone, so long runs no longer accumulate dead
//! state in the hot tables while `links_of`/`link_info`/`send` keep
//! answering exactly as before.
//!
//! Tombstones themselves are reclaimed by a **generation-based compaction**:
//! every tombstone records the epoch (incarnation counter) each endpoint had
//! when the link retired, and once *both* endpoints have crashed past those
//! epochs the tombstone — and its `by_node` index entries — is dropped for
//! good. The guard is what makes this invisible: a [`LinkId`] only ever
//! reaches an agent through callbacks within one life, and a crash bumps the
//! epoch, so by the time both recorded epochs are stale no live agent can
//! still name the link. Long churn runs therefore hold a bounded working
//! set instead of an ever-growing graveyard.

use std::collections::{BTreeMap, BTreeSet};

use super::{Event, World};
use crate::link::{InFlightMessage, LinkInfo, LinkState, PendingAttempt};
use crate::node::{AttemptId, ConnectError, IncomingConnection, LinkId, NodeId};
use crate::radio::RadioTech;
use crate::time::SimTime;

/// Compact record of a fully closed-and-drained link, kept so read APIs and
/// `send` error classification remain byte-identical after retirement.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RetiredLink {
    pub(crate) a: NodeId,
    pub(crate) b: NodeId,
    pub(crate) tech: RadioTech,
    pub(crate) established_at: SimTime,
    /// Epoch of `a` at retirement; the tombstone is compactable on `a`'s
    /// side once `a` has crashed past this generation.
    pub(crate) a_epoch: u64,
    /// Epoch of `b` at retirement.
    pub(crate) b_epoch: u64,
}

impl RetiredLink {
    fn info(&self, id: LinkId) -> LinkInfo {
        LinkInfo {
            id,
            initiator: self.a,
            acceptor: self.b,
            tech: self.tech,
            established_at: self.established_at,
            open: false,
        }
    }
}

/// The link layer of the world.
#[derive(Default)]
pub(crate) struct LinkTable {
    /// Open links plus closed links that are not yet drained/retired.
    active: BTreeMap<LinkId, LinkState>,
    /// Tombstones of retired links.
    retired: BTreeMap<LinkId, RetiredLink>,
    /// Every link (active or retired) a node has ever been an endpoint of.
    by_node: BTreeMap<NodeId, BTreeSet<LinkId>>,
    /// Connection attempts awaiting resolution.
    pub(crate) attempts: BTreeMap<AttemptId, PendingAttempt>,
    /// Payloads currently travelling, by message id.
    in_flight: BTreeMap<u64, InFlightMessage>,
    /// Message ids in flight per link.
    in_flight_by_link: BTreeMap<LinkId, BTreeSet<u64>>,
    /// Lifetime count of tombstones reclaimed by compaction.
    compacted: u64,
    next_link: u64,
    next_attempt: u64,
    next_msg: u64,
}

impl LinkTable {
    pub(crate) fn new() -> Self {
        LinkTable::default()
    }

    pub(crate) fn next_link_id(&mut self) -> LinkId {
        let id = LinkId(self.next_link);
        self.next_link += 1;
        id
    }

    pub(crate) fn next_attempt_id(&mut self) -> AttemptId {
        let id = AttemptId(self.next_attempt);
        self.next_attempt += 1;
        id
    }

    pub(crate) fn next_msg_id(&mut self) -> u64 {
        let id = self.next_msg;
        self.next_msg += 1;
        id
    }

    /// Inserts a freshly established link and indexes both endpoints.
    pub(crate) fn insert(&mut self, state: LinkState) {
        self.by_node.entry(state.a).or_default().insert(state.id);
        self.by_node.entry(state.b).or_default().insert(state.id);
        self.active.insert(state.id, state);
    }

    pub(crate) fn get(&self, link: LinkId) -> Option<&LinkState> {
        self.active.get(&link)
    }

    pub(crate) fn get_mut(&mut self, link: LinkId) -> Option<&mut LinkState> {
        self.active.get_mut(&link)
    }

    /// True if the link once existed but has been closed — either still in
    /// the active table awaiting drain, or already retired.
    pub(crate) fn is_closed(&self, link: LinkId) -> bool {
        match self.active.get(&link) {
            Some(state) => !state.open,
            None => self.retired.contains_key(&link),
        }
    }

    /// Snapshot of a link, open, closed or retired.
    pub(crate) fn info(&self, link: LinkId) -> Option<LinkInfo> {
        if let Some(state) = self.active.get(&link) {
            return Some(LinkInfo::from(state));
        }
        self.retired.get(&link).map(|r| r.info(link))
    }

    /// Snapshots of every link (open, closed or retired) with `node` as an
    /// endpoint, ascending by link id — the order the old full-table scan
    /// produced.
    pub(crate) fn infos_of(&self, node: NodeId) -> Vec<LinkInfo> {
        let Some(ids) = self.by_node.get(&node) else {
            return Vec::new();
        };
        ids.iter().filter_map(|id| self.info(*id)).collect()
    }

    /// `(id, a, b)` of every open link, ascending by link id. Used by the
    /// partition-start sweep that breaks links across a fresh cut.
    pub(crate) fn open_link_endpoints(&self) -> Vec<(LinkId, NodeId, NodeId)> {
        self.active
            .values()
            .filter(|l| l.open)
            .map(|l| (l.id, l.a, l.b))
            .collect()
    }

    /// Ids of the *open* links `node` participates in, ascending.
    pub(crate) fn open_links_of(&self, node: NodeId) -> Vec<LinkId> {
        let Some(ids) = self.by_node.get(&node) else {
            return Vec::new();
        };
        ids.iter()
            .filter(|id| self.active.get(id).map(|l| l.open).unwrap_or(false))
            .copied()
            .collect()
    }

    /// Registers a payload as travelling on a link.
    pub(crate) fn send_in_flight(&mut self, msg: u64, message: InFlightMessage) {
        self.in_flight_by_link.entry(message.link).or_default().insert(msg);
        self.in_flight.insert(msg, message);
    }

    /// Removes and returns a travelling payload (delivery or loss). The
    /// caller must follow up with [`World::retire_link_if_drained`] on the
    /// returned message's link.
    pub(crate) fn take_in_flight(&mut self, msg: u64) -> Option<InFlightMessage> {
        let message = self.in_flight.remove(&msg)?;
        if let Some(set) = self.in_flight_by_link.get_mut(&message.link) {
            set.remove(&msg);
            if set.is_empty() {
                self.in_flight_by_link.remove(&message.link);
            }
        }
        Some(message)
    }

    /// Latest scheduled delivery time among payloads in flight on `link`,
    /// if any. Cost is proportional to that link's in-flight count.
    pub(crate) fn last_delivery_on(&self, link: LinkId) -> Option<SimTime> {
        self.in_flight_by_link
            .get(&link)?
            .iter()
            .filter_map(|msg| self.in_flight.get(msg).map(|m| m.deliver_at))
            .max()
    }

    /// Endpoints of `link` iff it is in the active table, closed, and fully
    /// drained — i.e. ready to retire. Open links, still-draining links and
    /// already-retired links return `None`.
    pub(crate) fn drained_endpoints(&self, link: LinkId) -> Option<(NodeId, NodeId)> {
        let state = self.active.get(&link)?;
        if state.open || self.in_flight_by_link.contains_key(&link) {
            return None;
        }
        Some((state.a, state.b))
    }

    /// Drops a closed-and-drained link from the active table, leaving a
    /// compact tombstone stamped with each endpoint's current epoch. The
    /// caller ([`World::retire_link_if_drained`]) checks drain-readiness via
    /// [`LinkTable::drained_endpoints`] and supplies the epochs.
    pub(crate) fn retire(&mut self, link: LinkId, a_epoch: u64, b_epoch: u64) {
        let Some(state) = self.active.remove(&link) else {
            return;
        };
        self.retired.insert(
            link,
            RetiredLink {
                a: state.a,
                b: state.b,
                tech: state.tech,
                established_at: state.established_at,
                a_epoch,
                b_epoch,
            },
        );
    }

    /// Tombstones indexed under `node`: `(link, a, a_epoch, b, b_epoch)` per
    /// retired link, in ascending link-id order.
    pub(crate) fn retired_links_of(&self, node: NodeId) -> Vec<(LinkId, NodeId, u64, NodeId, u64)> {
        let Some(ids) = self.by_node.get(&node) else {
            return Vec::new();
        };
        ids.iter()
            .filter_map(|id| self.retired.get(id).map(|r| (*id, r.a, r.a_epoch, r.b, r.b_epoch)))
            .collect()
    }

    /// Compacts one tombstone away entirely: the retired entry and both
    /// `by_node` index entries are removed and the link id becomes unknown
    /// to every read API. Only call once no live agent can still name the
    /// link (both endpoints crashed past their recorded epochs).
    pub(crate) fn remove_retired(&mut self, link: LinkId) {
        let Some(r) = self.retired.remove(&link) else {
            return;
        };
        for node in [r.a, r.b] {
            if let Some(set) = self.by_node.get_mut(&node) {
                set.remove(&link);
                if set.is_empty() {
                    self.by_node.remove(&node);
                }
            }
        }
        self.compacted += 1;
    }

    /// Number of links still in the active table (open or draining).
    /// Diagnostic for tests and benches.
    pub(crate) fn active_count(&self) -> usize {
        self.active.len()
    }

    /// Number of currently open links (the telemetry `links_open` gauge).
    pub(crate) fn open_count(&self) -> usize {
        self.active.values().filter(|l| l.open).count()
    }

    /// Number of retired tombstones. Diagnostic for tests and benches.
    pub(crate) fn retired_count(&self) -> usize {
        self.retired.len()
    }

    /// Total tombstones reclaimed by generation-based compaction over the
    /// world's lifetime. Diagnostic for tests and benches.
    pub(crate) fn compacted_count(&self) -> u64 {
        self.compacted
    }
}

impl World {
    /// Retires a closed link once both endpoints have been notified and its
    /// last in-flight payload has drained, stamping the tombstone with each
    /// endpoint's current epoch so generation-based compaction can tell when
    /// no live agent can still name the link. No-op for open, still-draining
    /// or already-retired links.
    pub(super) fn retire_link_if_drained(&mut self, link: LinkId) {
        let Some((a, b)) = self.links.drained_endpoints(link) else {
            return;
        };
        let epoch = |world: &World, node: NodeId| world.topology.slot(node).map(|s| s.epoch).unwrap_or(0);
        let (a_epoch, b_epoch) = (epoch(self, a), epoch(self, b));
        self.links.retire(link, a_epoch, b_epoch);
    }

    /// Generation-based tombstone compaction, run when `node` crashes (its
    /// epoch has just been bumped): every tombstone indexed under `node`
    /// whose *other* endpoint has also crashed past its recorded epoch is
    /// unreferencable by any live agent and is dropped from the retired
    /// table and both `by_node` index entries. Pure bookkeeping — no events,
    /// no RNG draws — so traces are byte-identical with or without it.
    pub(super) fn compact_retired_links_of(&mut self, node: NodeId) {
        let epoch = |world: &World, n: NodeId| world.topology.slot(n).map(|s| s.epoch).unwrap_or(u64::MAX);
        let reclaimable: Vec<LinkId> = self
            .links
            .retired_links_of(node)
            .into_iter()
            .filter(|&(_, a, a_epoch, b, b_epoch)| epoch(self, a) > a_epoch && epoch(self, b) > b_epoch)
            .map(|(link, ..)| link)
            .collect();
        for link in reclaimable {
            self.links.remove_retired(link);
        }
    }

    /// Resolves a pending connection attempt: checks liveness, radio set and
    /// range, samples the technology fault, asks the target's agent, and on
    /// acceptance establishes the link and starts its periodic check cycle.
    pub(super) fn resolve_attempt(&mut self, attempt: AttemptId) {
        let pending = match self.links.attempts.remove(&attempt) {
            Some(p) => p,
            None => return,
        };
        let PendingAttempt {
            id,
            from,
            to,
            tech,
            epoch,
            ..
        } = pending;

        let fail = |world: &mut World, error: ConnectError| {
            world.metrics.record_connect_failure(from);
            world.agent_call(from, |agent, ctx| {
                agent.on_connect_failed(ctx, id, to, tech, error);
            });
        };

        if !self.is_alive(from) {
            return;
        }
        match self.topology.slot(from) {
            // The attempt was started in a previous life of the initiator;
            // the reborn agent must not receive its callbacks.
            Some(slot) if slot.epoch != epoch => return,
            // The initiator's own radio went dark mid-attempt: a local
            // technology failure.
            Some(slot) if slot.radio_off.contains(&tech) => {
                fail(self, ConnectError::Fault);
                return;
            }
            Some(_) => {}
            None => return,
        }
        let target_ok = self
            .topology
            .slot(to)
            .map(|s| s.alive && s.techs.contains(&tech) && !s.radio_off.contains(&tech))
            .unwrap_or(false);
        if !target_ok {
            fail(self, ConnectError::Unreachable);
            return;
        }
        if !self.in_range(from, to, tech) {
            fail(self, ConnectError::OutOfRange);
            return;
        }
        // A flapping pair in its down phase refuses connections exactly like
        // a range loss. Guarded so flap-free worlds skip the scan entirely.
        if self.faults.has_flaps() && self.faults.link_flapped_down(from, to, self.now) {
            fail(self, ConnectError::OutOfRange);
            return;
        }
        // An active partition cut refuses connections the same way.
        if self.adversary.has_partitions() && self.adversary.partitioned(from, to, self.now) {
            fail(self, ConnectError::OutOfRange);
            return;
        }
        let profile = self.config.radio.profile(tech).clone();
        let faulted = {
            let slot = match self.topology.slot_mut(from) {
                Some(s) => s,
                None => return,
            };
            profile.sample_setup_fault(&mut slot.rng)
        };
        if faulted {
            fail(self, ConnectError::Fault);
            return;
        }

        let link = self.links.next_link_id();
        let accepted = self
            .agent_call(to, |agent, ctx| {
                agent.on_incoming_connection(ctx, IncomingConnection { from, tech, link })
            })
            .unwrap_or(false);
        if !accepted {
            fail(self, ConnectError::Rejected);
            return;
        }
        self.links.insert(LinkState {
            id: link,
            a: from,
            b: to,
            tech,
            established_at: self.now,
            open: true,
            closed_gracefully: false,
            quality_override: None,
        });
        self.metrics.record_connect_established(from);
        let check_at = self.now + self.config.link_check_interval;
        self.scheduler.schedule(check_at, Event::LinkCheck { link });
        self.agent_call(from, |agent, ctx| {
            agent.on_connected(ctx, id, link, to, tech);
        });
    }
}
