//! Message delivery and disconnect ordering.
//!
//! This layer owns the rules about *when* payloads and close notifications
//! become visible: gracefully closed links flush their in-flight payloads
//! (socket buffers drain) while physical breaks lose them, and a close
//! notification never overtakes data written before the close. The in-flight
//! scan that enforces the latter runs against the per-link in-flight index,
//! so its cost follows one link's traffic, not the world's.

use super::{Event, World};
use crate::faults::{BurstOutcome, LifecycleKind};
use crate::link::InFlightMessage;
use crate::node::{DisconnectReason, LinkId, NodeId};
use crate::radio::RadioTech;
use crate::time::SimDuration;

impl World {
    pub(super) fn deliver(&mut self, msg: u64) {
        let mut in_flight = match self.links.take_in_flight(msg) {
            Some(m) => m,
            None => return,
        };
        // Clear the injected mark up front so lost injections don't leak
        // bookkeeping entries; the flag survives to the tamper pass below.
        let was_injected = self.adversary.has_hostiles() && self.adversary.take_injected(msg);
        // Payloads already in flight when an endpoint closed the link
        // gracefully are still delivered (the socket buffer flushes); only a
        // physical break (out of range, crash) loses them.
        let deliverable = self
            .links
            .get(in_flight.link)
            .map(|l| l.open || l.closed_gracefully)
            .unwrap_or(false);
        if !deliverable || !self.is_alive(in_flight.to) {
            self.metrics.record_message_lost(in_flight.to);
            self.retire_link_if_drained(in_flight.link);
            return;
        }
        // Payloads travelling a flapping pair during its down phase are lost
        // like any physical break. Checked before bursts: the predicate is
        // pure arithmetic, so no burst randomness is drawn for a payload the
        // flap already killed.
        if self.faults.has_flaps() && self.faults.link_flapped_down(in_flight.from, in_flight.to, self.now) {
            self.metrics.record_message_lost(in_flight.to);
            self.retire_link_if_drained(in_flight.link);
            return;
        }
        // Payloads crossing an active partition cut are lost like any other
        // physical break. Pure window arithmetic behind the emptiness guard,
        // so partition-free worlds pay one branch and draw nothing.
        if self.adversary.has_partitions() && self.adversary.partitioned(in_flight.from, in_flight.to, self.now) {
            self.adversary.stats.partition_drops += 1;
            self.metrics.record_message_lost(in_flight.to);
            self.retire_link_if_drained(in_flight.link);
            return;
        }
        // Loss/corruption bursts from installed fault plans. The guard keeps
        // burst-free worlds off this path entirely, so they draw no fault
        // randomness and behave byte-identically to a build without it.
        if self.faults.has_bursts() {
            match self.faults.sample_burst(in_flight.from, in_flight.to, self.now) {
                Some(BurstOutcome::Drop) => {
                    self.metrics.record_message_lost(in_flight.to);
                    self.retire_link_if_drained(in_flight.link);
                    return;
                }
                Some(BurstOutcome::Corrupt) => {
                    // Copy-on-write: the shared payload may still be queued
                    // on other links (or held by the sender), so the burst
                    // mutates a private copy and only this delivery sees the
                    // flipped bits.
                    let mut bytes = in_flight.payload.to_vec();
                    self.faults.corrupt_payload(&mut bytes);
                    in_flight.payload = bytes.into();
                }
                None => {}
            }
        }
        // Byzantine compromise: frames *sent by* a compromised node may be
        // rewritten in flight by the forge, and every frame *delivered to*
        // one is sniffed as replay material. Guarded like bursts so worlds
        // without hostiles skip both calls.
        if self.adversary.has_hostiles() {
            // Forge-built injections are already hostile; only organic frames
            // from a compromised sender go through the tamper pass.
            if !was_injected {
                if let Some(hostile) = self.adversary.tamper(in_flight.from, &in_flight.payload, self.now) {
                    in_flight.payload = hostile;
                }
            }
            self.adversary.sniff(in_flight.to, &in_flight.payload, self.now);
        }
        self.metrics.record_message_delivered(in_flight.to);
        let InFlightMessage {
            link,
            from,
            to,
            payload,
            ..
        } = in_flight;
        self.retire_link_if_drained(link);
        self.agent_call(to, |agent, ctx| agent.on_message(ctx, link, from, payload));
    }

    pub(super) fn check_link(&mut self, link: LinkId) {
        let (a, b, tech, open, has_override, exhausted) = match self.links.get(link) {
            Some(l) => (
                l.a,
                l.b,
                l.tech,
                l.open,
                l.quality_override.is_some(),
                l.quality_override.map(|ov| ov.exhausted_at(self.now)).unwrap_or(false),
            ),
            None => return, // retired (or never existed): nothing to check
        };
        if !open {
            // Already closed: never reschedule the check; the entry retires
            // once its in-flight payloads drain.
            self.retire_link_if_drained(link);
            return;
        }
        let a_alive = self.is_alive(a);
        let b_alive = self.is_alive(b);
        let radio_dark = !self.radio_enabled(a, tech) || !self.radio_enabled(b, tech);
        let flapped_down = self.faults.has_flaps() && self.faults.link_flapped_down(a, b, self.now);
        let cut = self.adversary.has_partitions() && self.adversary.partitioned(a, b, self.now);
        let physically_broken = radio_dark
            || flapped_down
            || cut
            || if has_override {
                exhausted
            } else {
                !self.in_range(a, b, tech)
            };
        if !a_alive || !b_alive || physically_broken {
            if let Some(state) = self.links.get_mut(link) {
                state.open = false;
            }
            self.metrics.record_link_broken(a);
            self.metrics.record_link_broken(b);
            let reason_for = |peer_alive: bool| {
                if peer_alive {
                    DisconnectReason::OutOfRange
                } else {
                    DisconnectReason::PeerFailed
                }
            };
            if a_alive {
                self.agent_call(a, |agent, ctx| {
                    agent.on_disconnected(ctx, link, b, reason_for(b_alive));
                });
            }
            if b_alive {
                self.agent_call(b, |agent, ctx| {
                    agent.on_disconnected(ctx, link, a, reason_for(a_alive));
                });
            }
            self.retire_link_if_drained(link);
            return;
        }
        let next = self.now + self.config.link_check_interval;
        self.scheduler.schedule(next, Event::LinkCheck { link });
    }

    pub(super) fn graceful_disconnect(&mut self, link: LinkId, closer: NodeId) {
        // Preserve FIFO ordering with respect to payloads already in flight
        // towards the peer: the close notification must not overtake data
        // written before the close (socket buffers drain first).
        if let Some(t) = self.links.last_delivery_on(link) {
            if t >= self.now {
                self.scheduler
                    .schedule(t + SimDuration::from_micros(1), Event::Disconnect { link, closer });
                return;
            }
        }
        let peer = match self.links.get_mut(link) {
            Some(state) if state.open => {
                state.open = false;
                state.closed_gracefully = true;
                state.peer_of(closer)
            }
            _ => return,
        };
        if let Some(peer) = peer {
            self.agent_call(peer, |agent, ctx| {
                agent.on_disconnected(ctx, link, closer, DisconnectReason::PeerClosed);
            });
        }
        self.retire_link_if_drained(link);
    }

    /// Powers a node off: every open link it participates in breaks and the
    /// surviving peers are notified with
    /// [`DisconnectReason::PeerFailed`]. The node leaves the spatial index,
    /// stops answering inquiries and its pending timers/attempts die; it can
    /// come back through [`World::restart_node`] (or a scheduled
    /// [`FaultPlan`](crate::faults::FaultPlan) restart).
    ///
    /// # Panics
    ///
    /// Must not be called from inside an agent callback.
    pub fn crash_node(&mut self, node: NodeId) {
        match self.topology.slot(node) {
            Some(slot) if slot.alive => self.topology.power_off(node),
            _ => return,
        }
        self.faults.record(self.now, node, LifecycleKind::NodeDown);
        let affected: Vec<(LinkId, NodeId)> = self
            .links
            .open_links_of(node)
            .into_iter()
            .filter_map(|id| self.links.get(id).and_then(|l| l.peer_of(node)).map(|peer| (id, peer)))
            .collect();
        for (link, peer) in affected {
            if let Some(state) = self.links.get_mut(link) {
                state.open = false;
            }
            self.metrics.record_link_broken(peer);
            self.metrics.record_link_broken(node);
            self.agent_call(peer, |agent, ctx| {
                agent.on_disconnected(ctx, link, node, DisconnectReason::PeerFailed);
            });
            self.retire_link_if_drained(link);
        }
        // The crash bumped this node's epoch: tombstones whose other
        // endpoint has also crashed since retirement are now unreferencable
        // and can be reclaimed.
        self.compact_retired_links_of(node);
    }

    /// Breaks every open link of `node` that runs over `tech` (the radio
    /// went dark). Unlike a crash both endpoints are still running, so both
    /// are notified — with `OutOfRange`, the same reason a coverage loss
    /// produces, which routes the break into the identical recovery paths.
    pub(super) fn break_links_on_tech(&mut self, node: NodeId, tech: RadioTech) {
        let affected: Vec<(LinkId, NodeId)> = self
            .links
            .open_links_of(node)
            .into_iter()
            .filter_map(|id| {
                self.links
                    .get(id)
                    .filter(|l| l.tech == tech)
                    .and_then(|l| l.peer_of(node))
                    .map(|peer| (id, peer))
            })
            .collect();
        for (link, peer) in affected {
            if let Some(state) = self.links.get_mut(link) {
                state.open = false;
            }
            self.metrics.record_link_broken(node);
            self.metrics.record_link_broken(peer);
            self.agent_call(node, |agent, ctx| {
                agent.on_disconnected(ctx, link, peer, DisconnectReason::OutOfRange);
            });
            self.agent_call(peer, |agent, ctx| {
                agent.on_disconnected(ctx, link, node, DisconnectReason::OutOfRange);
            });
            self.retire_link_if_drained(link);
        }
    }
}
