//! Link bookkeeping: established connections, pending attempts and
//! in-flight transmissions.
//!
//! These types are internal to the world's event processing, but a read-only
//! [`LinkInfo`] snapshot is exposed for scenario drivers and tests.

use serde::{Deserialize, Serialize};

use crate::node::{AttemptId, LinkId, NodeId};
use crate::payload::Payload;
use crate::radio::RadioTech;
use crate::time::SimTime;

/// An artificial link-quality override.
///
/// §5.2.1 of the thesis simulates connection deterioration by "subtracting
/// the monitored link quality value artificially by 1 every second" instead
/// of physically moving devices. Setting an override on a link reproduces
/// exactly that: quality starts at `initial` when the override is installed
/// and decreases linearly by `decay_per_sec`; the link is considered broken
/// once it reaches zero.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct QualityOverride {
    /// Instant the override was installed.
    pub set_at: SimTime,
    /// Quality value at `set_at`.
    pub initial: f64,
    /// Linear decay in quality units per second (may be zero for a frozen
    /// quality).
    pub decay_per_sec: f64,
}

impl QualityOverride {
    /// Quality value at time `now`, clamped to the 0-255 scale.
    pub fn value_at(&self, now: SimTime) -> u8 {
        let elapsed = now.saturating_since(self.set_at).as_secs_f64();
        (self.initial - self.decay_per_sec * elapsed).round().clamp(0.0, 255.0) as u8
    }

    /// True if the override has decayed to zero at `now`.
    pub fn exhausted_at(&self, now: SimTime) -> bool {
        self.value_at(now) == 0
    }
}

/// Internal state of an established link.
#[derive(Debug, Clone)]
pub(crate) struct LinkState {
    pub id: LinkId,
    pub a: NodeId,
    pub b: NodeId,
    pub tech: RadioTech,
    pub established_at: SimTime,
    pub open: bool,
    /// True when the link was closed deliberately by an endpoint: payloads
    /// already in flight are still delivered (socket buffers flush), unlike a
    /// coverage loss where they are dropped.
    pub closed_gracefully: bool,
    pub quality_override: Option<QualityOverride>,
}

impl LinkState {
    /// The endpoint opposite to `node`, if `node` is an endpoint at all.
    pub fn peer_of(&self, node: NodeId) -> Option<NodeId> {
        if node == self.a {
            Some(self.b)
        } else if node == self.b {
            Some(self.a)
        } else {
            None
        }
    }

    /// True if `node` is one of the two endpoints.
    pub fn has_endpoint(&self, node: NodeId) -> bool {
        node == self.a || node == self.b
    }
}

/// Public, read-only snapshot of a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkInfo {
    /// The link identifier.
    pub id: LinkId,
    /// Initiating endpoint.
    pub initiator: NodeId,
    /// Accepting endpoint.
    pub acceptor: NodeId,
    /// Radio technology in use.
    pub tech: RadioTech,
    /// When the link was established.
    pub established_at: SimTime,
    /// Whether the link is still open.
    pub open: bool,
}

impl From<&LinkState> for LinkInfo {
    fn from(s: &LinkState) -> Self {
        LinkInfo {
            id: s.id,
            initiator: s.a,
            acceptor: s.b,
            tech: s.tech,
            established_at: s.established_at,
            open: s.open,
        }
    }
}

/// A connection attempt that has been initiated but not yet resolved.
#[derive(Debug, Clone)]
pub(crate) struct PendingAttempt {
    pub id: AttemptId,
    pub from: NodeId,
    pub to: NodeId,
    pub tech: RadioTech,
    #[allow(dead_code)]
    pub started_at: SimTime,
    /// The initiator's life the attempt belongs to; stale attempts from
    /// before a crash resolve to nothing.
    pub epoch: u64,
}

/// A payload travelling across a link. The payload is a shared [`Payload`]
/// clone, so queueing a frame on many links (or re-delivering it along a
/// bridge chain) never copies the bytes.
#[derive(Debug, Clone)]
pub(crate) struct InFlightMessage {
    pub link: LinkId,
    pub from: NodeId,
    pub to: NodeId,
    pub payload: Payload,
    pub deliver_at: SimTime,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn override_decays_linearly() {
        let ov = QualityOverride {
            set_at: SimTime::from_secs(10),
            initial: 240.0,
            decay_per_sec: 1.0,
        };
        assert_eq!(ov.value_at(SimTime::from_secs(10)), 240);
        assert_eq!(ov.value_at(SimTime::from_secs(20)), 230);
        assert_eq!(ov.value_at(SimTime::from_secs(250)), 0);
        assert!(ov.exhausted_at(SimTime::from_secs(250)));
        assert!(!ov.exhausted_at(SimTime::from_secs(20)));
        // Querying before set_at clamps to the initial value.
        assert_eq!(ov.value_at(SimTime::ZERO), 240);
    }

    #[test]
    fn override_clamps_to_scale() {
        let ov = QualityOverride {
            set_at: SimTime::ZERO,
            initial: 400.0,
            decay_per_sec: 0.0,
        };
        assert_eq!(ov.value_at(SimTime::from_secs(5)), 255);
    }

    #[test]
    fn link_state_peer_lookup() {
        let s = LinkState {
            id: LinkId(1),
            a: NodeId::from_raw(1),
            b: NodeId::from_raw(2),
            tech: RadioTech::Bluetooth,
            established_at: SimTime::ZERO,
            open: true,
            closed_gracefully: false,
            quality_override: None,
        };
        assert_eq!(s.peer_of(NodeId::from_raw(1)), Some(NodeId::from_raw(2)));
        assert_eq!(s.peer_of(NodeId::from_raw(2)), Some(NodeId::from_raw(1)));
        assert_eq!(s.peer_of(NodeId::from_raw(3)), None);
        assert!(s.has_endpoint(NodeId::from_raw(2)));
        assert!(!s.has_endpoint(NodeId::from_raw(3)));
        let info = LinkInfo::from(&s);
        assert_eq!(info.initiator, NodeId::from_raw(1));
        assert_eq!(info.acceptor, NodeId::from_raw(2));
        assert!(info.open);
        assert_eq!(info.established_at + SimDuration::ZERO, SimTime::ZERO);
    }
}
