//! Simulation metrics.
//!
//! The experiment runners (E1–E12) summarise their results from these
//! counters: inquiry activity, connection attempts and outcomes, traffic
//! volume and link breakage. Counters exist per node and are also aggregated
//! globally.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::radio::RadioTech;

/// Counters for one node (or the global aggregate).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Device-discovery inquiries started.
    pub inquiries_started: u64,
    /// Devices returned across all inquiry results.
    pub inquiry_hits: u64,
    /// Connection attempts initiated.
    pub connect_attempts: u64,
    /// Connection attempts that failed (fault, out of range or rejection).
    pub connect_failures: u64,
    /// Connections successfully established.
    pub connects_established: u64,
    /// Messages passed to the radio for transmission.
    pub messages_sent: u64,
    /// Payload bytes passed to the radio for transmission.
    pub bytes_sent: u64,
    /// Messages delivered to the peer.
    pub messages_delivered: u64,
    /// Messages lost because the link broke before delivery.
    pub messages_lost: u64,
    /// Established links that broke (out of range or forced).
    pub links_broken: u64,
    /// Link-quality samples taken.
    pub quality_samples: u64,
}

impl Counters {
    /// Adds another set of counters into this one.
    pub fn merge(&mut self, other: &Counters) {
        self.inquiries_started += other.inquiries_started;
        self.inquiry_hits += other.inquiry_hits;
        self.connect_attempts += other.connect_attempts;
        self.connect_failures += other.connect_failures;
        self.connects_established += other.connects_established;
        self.messages_sent += other.messages_sent;
        self.bytes_sent += other.bytes_sent;
        self.messages_delivered += other.messages_delivered;
        self.messages_lost += other.messages_lost;
        self.links_broken += other.links_broken;
        self.quality_samples += other.quality_samples;
    }

    /// Fraction of connection attempts that failed, or zero if none were made.
    pub fn connect_failure_rate(&self) -> f64 {
        if self.connect_attempts == 0 {
            0.0
        } else {
            self.connect_failures as f64 / self.connect_attempts as f64
        }
    }

    /// Fraction of sent messages that were delivered, or 1.0 if none were sent.
    pub fn delivery_rate(&self) -> f64 {
        if self.messages_sent == 0 {
            1.0
        } else {
            self.messages_delivered as f64 / self.messages_sent as f64
        }
    }
}

/// Metrics store for a whole simulation world.
///
/// Per-node counters live in a dense vector indexed by the node id's raw
/// value (world node ids are allocated sequentially), so the record calls on
/// the event-loop hot path are an index, not a tree walk. `None` marks a
/// node that never recorded anything, preserving the "only active nodes"
/// semantics of [`Metrics::iter_nodes`].
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Metrics {
    global: Counters,
    per_node: Vec<Option<Counters>>,
    per_tech_messages: BTreeMap<RadioTech, u64>,
    per_tech_bytes: BTreeMap<RadioTech, u64>,
}

impl Metrics {
    /// Creates an empty metrics store.
    pub fn new() -> Self {
        Metrics::default()
    }

    /// The aggregate counters across all nodes.
    pub fn global(&self) -> &Counters {
        &self.global
    }

    /// Counters for one node (zeroed counters if the node never did anything).
    pub fn node(&self, node: NodeId) -> Counters {
        self.per_node
            .get(node.as_raw() as usize)
            .and_then(|c| *c)
            .unwrap_or_default()
    }

    /// Iterates over the counters of every node that recorded anything, in
    /// ascending node-id order.
    pub fn iter_nodes(&self) -> impl Iterator<Item = (NodeId, &Counters)> {
        self.per_node
            .iter()
            .enumerate()
            .filter_map(|(i, c)| c.as_ref().map(|c| (NodeId::from_raw(i as u64), c)))
    }

    /// Messages sent per radio technology.
    pub fn messages_for_tech(&self, tech: RadioTech) -> u64 {
        self.per_tech_messages.get(&tech).copied().unwrap_or(0)
    }

    /// Payload bytes sent per radio technology.
    pub fn bytes_for_tech(&self, tech: RadioTech) -> u64 {
        self.per_tech_bytes.get(&tech).copied().unwrap_or(0)
    }

    fn node_mut(&mut self, node: NodeId) -> &mut Counters {
        let idx = node.as_raw() as usize;
        if idx >= self.per_node.len() {
            self.per_node.resize(idx + 1, None);
        }
        self.per_node[idx].get_or_insert_with(Counters::default)
    }

    /// Records an inquiry being started by `node`.
    pub fn record_inquiry_started(&mut self, node: NodeId) {
        self.global.inquiries_started += 1;
        self.node_mut(node).inquiries_started += 1;
    }

    /// Records the number of devices an inquiry returned.
    pub fn record_inquiry_hits(&mut self, node: NodeId, hits: u64) {
        self.global.inquiry_hits += hits;
        self.node_mut(node).inquiry_hits += hits;
    }

    /// Records a connection attempt initiated by `node`.
    pub fn record_connect_attempt(&mut self, node: NodeId) {
        self.global.connect_attempts += 1;
        self.node_mut(node).connect_attempts += 1;
    }

    /// Records a failed connection attempt.
    pub fn record_connect_failure(&mut self, node: NodeId) {
        self.global.connect_failures += 1;
        self.node_mut(node).connect_failures += 1;
    }

    /// Records an established connection.
    pub fn record_connect_established(&mut self, node: NodeId) {
        self.global.connects_established += 1;
        self.node_mut(node).connects_established += 1;
    }

    /// Records a message (and its size) sent by `node` over `tech`.
    pub fn record_message_sent(&mut self, node: NodeId, tech: RadioTech, bytes: u64) {
        self.global.messages_sent += 1;
        self.global.bytes_sent += bytes;
        let c = self.node_mut(node);
        c.messages_sent += 1;
        c.bytes_sent += bytes;
        *self.per_tech_messages.entry(tech).or_insert(0) += 1;
        *self.per_tech_bytes.entry(tech).or_insert(0) += bytes;
    }

    /// Records a message delivered to `node`.
    pub fn record_message_delivered(&mut self, node: NodeId) {
        self.global.messages_delivered += 1;
        self.node_mut(node).messages_delivered += 1;
    }

    /// Records a message lost in transit towards `node`.
    pub fn record_message_lost(&mut self, node: NodeId) {
        self.global.messages_lost += 1;
        self.node_mut(node).messages_lost += 1;
    }

    /// Records a broken link affecting `node`.
    pub fn record_link_broken(&mut self, node: NodeId) {
        self.global.links_broken += 1;
        self.node_mut(node).links_broken += 1;
    }

    /// Records a quality sample taken by `node`.
    pub fn record_quality_sample(&mut self, node: NodeId) {
        self.global.quality_samples += 1;
        self.node_mut(node).quality_samples += 1;
    }

    /// Merges counters recorded outside this store — a world shard tallies
    /// per-node counters locally and folds them in at the end of a run — into
    /// the node's slot and the global aggregate. All-zero counters are
    /// skipped so [`Metrics::iter_nodes`] keeps its "only active nodes"
    /// semantics.
    pub fn absorb_node(&mut self, node: NodeId, counters: &Counters) {
        if *counters == Counters::default() {
            return;
        }
        self.global.merge(counters);
        self.node_mut(node).merge(counters);
    }

    /// Merges externally recorded per-technology traffic totals (the
    /// per-tech companion of [`Metrics::absorb_node`]).
    pub fn absorb_tech(&mut self, tech: RadioTech, messages: u64, bytes: u64) {
        if messages == 0 && bytes == 0 {
            return;
        }
        *self.per_tech_messages.entry(tech).or_insert(0) += messages;
        *self.per_tech_bytes.entry(tech).or_insert(0) += bytes;
    }

    /// Resets every counter to zero, keeping the store allocated: the
    /// per-node vector retains its capacity (slots revert to `None`, so
    /// [`Metrics::iter_nodes`] stays empty until a node records again) and
    /// the per-tech maps are cleared in place.
    pub fn reset(&mut self) {
        self.global = Counters::default();
        for slot in &mut self.per_node {
            *slot = None;
        }
        self.per_tech_messages.clear();
        self.per_tech_bytes.clear();
    }

    /// Capacity of the per-node counter vector — diagnostic for the
    /// allocation-retention guarantee of [`Metrics::reset`].
    pub fn per_node_capacity(&self) -> usize {
        self.per_node.capacity()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: u64) -> NodeId {
        NodeId::from_raw(n)
    }

    #[test]
    fn per_node_and_global_stay_consistent() {
        let mut m = Metrics::new();
        m.record_connect_attempt(node(1));
        m.record_connect_attempt(node(2));
        m.record_connect_failure(node(2));
        m.record_connect_established(node(1));
        assert_eq!(m.global().connect_attempts, 2);
        assert_eq!(m.node(node(1)).connect_attempts, 1);
        assert_eq!(m.node(node(2)).connect_failures, 1);
        assert_eq!(m.node(node(3)).connect_attempts, 0);
    }

    #[test]
    fn tech_breakdown() {
        let mut m = Metrics::new();
        m.record_message_sent(node(1), RadioTech::Bluetooth, 100);
        m.record_message_sent(node(1), RadioTech::Bluetooth, 50);
        m.record_message_sent(node(2), RadioTech::Gprs, 10);
        assert_eq!(m.messages_for_tech(RadioTech::Bluetooth), 2);
        assert_eq!(m.bytes_for_tech(RadioTech::Bluetooth), 150);
        assert_eq!(m.messages_for_tech(RadioTech::Gprs), 1);
        assert_eq!(m.messages_for_tech(RadioTech::Wlan), 0);
        assert_eq!(m.global().bytes_sent, 160);
    }

    #[test]
    fn rates() {
        let mut c = Counters::default();
        assert_eq!(c.connect_failure_rate(), 0.0);
        assert_eq!(c.delivery_rate(), 1.0);
        c.connect_attempts = 10;
        c.connect_failures = 3;
        c.messages_sent = 20;
        c.messages_delivered = 19;
        assert!((c.connect_failure_rate() - 0.3).abs() < 1e-12);
        assert!((c.delivery_rate() - 0.95).abs() < 1e-12);
    }

    #[test]
    fn merge_adds_fields() {
        let mut a = Counters {
            messages_sent: 5,
            bytes_sent: 100,
            ..Default::default()
        };
        let b = Counters {
            messages_sent: 2,
            bytes_sent: 30,
            links_broken: 1,
            ..Default::default()
        };
        a.merge(&b);
        assert_eq!(a.messages_sent, 7);
        assert_eq!(a.bytes_sent, 130);
        assert_eq!(a.links_broken, 1);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = Metrics::new();
        m.record_inquiry_started(node(1));
        m.record_inquiry_hits(node(1), 4);
        m.reset();
        assert_eq!(m.global().inquiries_started, 0);
        assert_eq!(m.node(node(1)).inquiry_hits, 0);
    }

    #[test]
    fn reset_keeps_the_store_allocated() {
        let mut m = Metrics::new();
        for n in 0..256 {
            m.record_message_sent(node(n), RadioTech::Wlan, 10);
        }
        let capacity = m.per_node_capacity();
        assert!(capacity >= 256, "recording must have grown the per-node store");
        m.reset();
        assert_eq!(
            m.per_node_capacity(),
            capacity,
            "reset must keep the per-node vector allocated, not rebuild it"
        );
        assert_eq!(m.global(), &Counters::default());
        assert_eq!(m.iter_nodes().count(), 0, "reset slots must read as never-recorded");
        assert_eq!(m.messages_for_tech(RadioTech::Wlan), 0);
        // The store still works after an in-place reset.
        m.record_message_sent(node(3), RadioTech::Gprs, 7);
        assert_eq!(m.node(node(3)).bytes_sent, 7);
        assert_eq!(m.iter_nodes().count(), 1);
    }

    #[test]
    fn iter_nodes_lists_only_active_nodes() {
        let mut m = Metrics::new();
        m.record_quality_sample(node(7));
        m.record_link_broken(node(9));
        let ids: Vec<NodeId> = m.iter_nodes().map(|(id, _)| id).collect();
        assert_eq!(ids, vec![node(7), node(9)]);
    }
}
