//! Adversarial fault injection: network partitions and Byzantine frames.
//!
//! [`simnet::faults`](crate::faults) models *accidental* failure — crashes,
//! outages, loss bursts. This module models *malice*:
//!
//! * **Partition windows** — scheduled intervals during which two node sets
//!   cannot hear each other at all: inquiries do not cross the cut,
//!   connection attempts fail with `OutOfRange`, in-flight payloads are
//!   lost, and open links spanning the cut break the instant the window
//!   opens. When the window closes the cut heals and ordinary discovery,
//!   handover and bridge re-routing repair the damage.
//! * **Byzantine compromise** — a set of *compromised* nodes whose outgoing
//!   frames may be rewritten in flight ("tamper"), which observe every
//!   frame delivered to them ("sniff", feeding replay attacks), and which
//!   periodically inject wholly forged frames on their own open links
//!   ("inject"). What a hostile frame *contains* is delegated to a
//!   [`FrameForge`] implementation — the simulator knows nothing about the
//!   wire protocol it is attacking, so the middleware crate supplies the
//!   forge.
//!
//! All adversarial randomness is drawn from a dedicated RNG stream derived
//! from the world seed under its own label: a world with no adversary plan
//! installed draws nothing from it and behaves byte-identically to a build
//! without this module. The hot-path predicates (`has_partitions`,
//! `partitioned`, `is_compromised`) are pure arithmetic over the installed
//! plan, so the checks added to delivery, discovery and connection
//! resolution cost a branch when the plan is empty.

use std::collections::BTreeSet;

use crate::node::NodeId;
use crate::payload::Payload;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One scheduled partition: while active, nodes inside `island` and nodes
/// outside it cannot communicate in either direction.
#[derive(Debug, Clone)]
pub struct PartitionWindow {
    /// Window start (inclusive).
    pub from: SimTime,
    /// Window end (exclusive) — the heal instant.
    pub until: SimTime,
    /// One side of the cut; everything not in the set is the other side.
    pub island: BTreeSet<NodeId>,
}

impl PartitionWindow {
    /// True while the window is in force.
    pub fn active_at(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }

    /// True if the pair `(a, b)` spans the cut (regardless of time).
    pub fn cuts(&self, a: NodeId, b: NodeId) -> bool {
        self.island.contains(&a) != self.island.contains(&b)
    }
}

/// One compromised node: between `from` and `until` its outgoing frames may
/// be tampered with and it injects a forged frame every `inject_interval`.
#[derive(Debug, Clone)]
pub struct CompromisedNode {
    /// The attacker.
    pub node: NodeId,
    /// Compromise start (inclusive).
    pub from: SimTime,
    /// Compromise end (exclusive).
    pub until: SimTime,
    /// Spacing of injection attempts while compromised.
    pub inject_interval: SimDuration,
}

impl CompromisedNode {
    fn active_at(&self, t: SimTime) -> bool {
        self.from <= t && t < self.until
    }
}

/// A declarative adversary schedule: partition windows plus compromised
/// nodes. Installed into a world with
/// [`World::install_adversary_plan`](crate::world::World::install_adversary_plan).
#[derive(Debug, Clone, Default)]
pub struct AdversaryPlan {
    partitions: Vec<PartitionWindow>,
    compromised: Vec<CompromisedNode>,
}

impl AdversaryPlan {
    /// An empty plan.
    pub fn new() -> Self {
        AdversaryPlan::default()
    }

    /// Adds a partition window separating `island` from the rest of the
    /// world between `from` and `until` (builder-style).
    pub fn partition(mut self, from: SimTime, until: SimTime, island: impl IntoIterator<Item = NodeId>) -> Self {
        self.partitions.push(PartitionWindow {
            from,
            until,
            island: island.into_iter().collect(),
        });
        self
    }

    /// Marks `node` as compromised between `from` and `until`, injecting a
    /// forged frame every `inject_interval` (builder-style).
    pub fn compromise(mut self, node: NodeId, from: SimTime, until: SimTime, inject_interval: SimDuration) -> Self {
        self.compromised.push(CompromisedNode {
            node,
            from,
            until,
            inject_interval: inject_interval.max(SimDuration::from_millis(1)),
        });
        self
    }

    /// True when the plan schedules nothing.
    pub fn is_empty(&self) -> bool {
        self.partitions.is_empty() && self.compromised.is_empty()
    }

    /// The partition windows of the plan.
    pub fn partitions(&self) -> &[PartitionWindow] {
        &self.partitions
    }

    /// The compromised nodes of the plan.
    pub fn compromised(&self) -> &[CompromisedNode] {
        &self.compromised
    }
}

/// Builds the adversarial payloads. The simulator decides *when* a hostile
/// frame appears (driven by the adversary RNG stream); the forge decides
/// *what* it contains, which requires knowledge of the wire protocol the
/// world's agents speak — so the middleware crate implements this trait.
pub trait FrameForge {
    /// Possibly rewrite a frame sent by compromised `attacker` while its
    /// compromise window is active. Return `Some` to replace the payload
    /// seen by the receiver; `None` lets the frame through untouched.
    fn tamper(&mut self, attacker: NodeId, payload: &Payload, rng: &mut SimRng) -> Option<Payload>;

    /// Forge a hostile frame for `attacker` to inject towards `peer`.
    /// `sniffed` holds recent frames delivered to any compromised node, for
    /// replay attacks. Return `None` to skip this injection tick.
    fn forge(&mut self, attacker: NodeId, peer: NodeId, sniffed: &[Payload], rng: &mut SimRng) -> Option<Payload>;
}

/// Aggregate counters of adversarial activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AdversaryStats {
    /// Partition windows that have opened.
    pub partitions_started: u64,
    /// Partition windows that have healed.
    pub partitions_healed: u64,
    /// In-flight payloads lost to an active cut.
    pub partition_drops: u64,
    /// Open links broken by a window opening across them.
    pub cut_links_broken: u64,
    /// Frames rewritten in flight by the forge.
    pub frames_tampered: u64,
    /// Forged frames injected on an attacker's links.
    pub frames_injected: u64,
}

impl AdversaryStats {
    /// Total hostile frames put on the air (tampered + injected).
    pub fn frames_hostile(&self) -> u64 {
        self.frames_tampered + self.frames_injected
    }
}

/// One scheduled adversary step (indexed by the world's `Event::Adversary`).
#[derive(Debug, Clone, Copy)]
pub(crate) enum AdversaryAction {
    /// A partition window opens: break open links across the cut.
    PartitionStart(usize),
    /// A partition window closes (heal; counted for the stats/telemetry).
    PartitionEnd,
    /// An injection tick for a compromised node.
    Inject { node: NodeId },
}

/// Label under which the adversary RNG stream is derived from the world
/// seed, keeping adversarial draws fully isolated from every other stream.
const ADVERSARY_RNG_LABEL: u64 = 0xAD5E_44A1_0000_0001;

/// How many recently sniffed frames are retained for replay attacks.
const SNIFF_CAPACITY: usize = 32;

/// Runtime adversary state owned by the world.
pub(crate) struct AdversaryEngine {
    partitions: Vec<PartitionWindow>,
    compromised: Vec<CompromisedNode>,
    actions: Vec<AdversaryAction>,
    pub(crate) rng: SimRng,
    pub(crate) forge: Option<Box<dyn FrameForge>>,
    sniffed: Vec<Payload>,
    sniff_next: usize,
    /// Message ids of injected frames still in flight: they were built by
    /// the forge already, so the delivery-time tamper pass skips them.
    injected_msgs: std::collections::BTreeSet<u64>,
    pub(crate) stats: AdversaryStats,
}

impl AdversaryEngine {
    pub(crate) fn new(world_seed: u64) -> Self {
        AdversaryEngine {
            partitions: Vec::new(),
            compromised: Vec::new(),
            actions: Vec::new(),
            rng: SimRng::new(world_seed ^ ADVERSARY_RNG_LABEL),
            forge: None,
            sniffed: Vec::new(),
            sniff_next: 0,
            injected_msgs: std::collections::BTreeSet::new(),
            stats: AdversaryStats::default(),
        }
    }

    /// Merges a plan into the engine (additive, like fault plans) and
    /// returns the `(time, action index)` pairs the world must schedule.
    pub(crate) fn install(&mut self, plan: AdversaryPlan) -> Vec<(SimTime, usize)> {
        let mut schedule = Vec::new();
        for window in plan.partitions {
            let idx = self.partitions.len();
            schedule.push((window.from, self.push_action(AdversaryAction::PartitionStart(idx))));
            schedule.push((window.until, self.push_action(AdversaryAction::PartitionEnd)));
            self.partitions.push(window);
        }
        for c in plan.compromised {
            let node = c.node;
            let mut at = c.from;
            while at < c.until {
                schedule.push((at, self.push_action(AdversaryAction::Inject { node })));
                at += c.inject_interval;
            }
            self.compromised.push(c);
        }
        schedule
    }

    fn push_action(&mut self, action: AdversaryAction) -> usize {
        self.actions.push(action);
        self.actions.len() - 1
    }

    pub(crate) fn action(&self, idx: usize) -> Option<AdversaryAction> {
        self.actions.get(idx).copied()
    }

    pub(crate) fn partition_window(&self, idx: usize) -> Option<&PartitionWindow> {
        self.partitions.get(idx)
    }

    /// True once any partition window has been installed. Pure; guards every
    /// hot-path partition check so plan-free worlds pay one branch.
    pub(crate) fn has_partitions(&self) -> bool {
        !self.partitions.is_empty()
    }

    /// True while an active window separates `a` from `b`. Pure arithmetic:
    /// no RNG is drawn deciding partition outcomes.
    pub(crate) fn partitioned(&self, a: NodeId, b: NodeId, now: SimTime) -> bool {
        self.partitions.iter().any(|w| w.active_at(now) && w.cuts(a, b))
    }

    /// Number of windows in force at `now` (the telemetry gauge).
    pub(crate) fn partitions_active_at(&self, now: SimTime) -> usize {
        self.partitions.iter().filter(|w| w.active_at(now)).count()
    }

    /// True once any compromise has been installed.
    pub(crate) fn has_hostiles(&self) -> bool {
        !self.compromised.is_empty()
    }

    /// True while `node` is inside one of its compromise windows.
    pub(crate) fn is_compromised(&self, node: NodeId, now: SimTime) -> bool {
        self.compromised.iter().any(|c| c.node == node && c.active_at(now))
    }

    /// True when the engine can influence anything (telemetry export guard).
    pub(crate) fn installed(&self) -> bool {
        self.has_partitions() || self.has_hostiles()
    }

    /// Gives a compromised sender's frame to the forge for rewriting.
    /// Returns the replacement payload, if the forge chose to tamper.
    pub(crate) fn tamper(&mut self, from: NodeId, payload: &Payload, now: SimTime) -> Option<Payload> {
        if !self.is_compromised(from, now) {
            return None;
        }
        let mut forge = self.forge.take()?;
        let out = forge.tamper(from, payload, &mut self.rng);
        self.forge = Some(forge);
        if out.is_some() {
            self.stats.frames_tampered += 1;
        }
        out
    }

    /// Records a frame delivered to a compromised node (replay material).
    pub(crate) fn sniff(&mut self, to: NodeId, payload: &Payload, now: SimTime) {
        if self.forge.is_none() || !self.is_compromised(to, now) {
            return;
        }
        if self.sniffed.len() < SNIFF_CAPACITY {
            self.sniffed.push(payload.clone());
        } else {
            self.sniffed[self.sniff_next] = payload.clone();
            self.sniff_next = (self.sniff_next + 1) % SNIFF_CAPACITY;
        }
    }

    /// Asks the forge for an injected frame towards `peer`.
    pub(crate) fn forge_injection(&mut self, attacker: NodeId, peer: NodeId) -> Option<Payload> {
        let mut forge = self.forge.take()?;
        let out = forge.forge(attacker, peer, &self.sniffed, &mut self.rng);
        self.forge = Some(forge);
        if out.is_some() {
            self.stats.frames_injected += 1;
        }
        out
    }

    /// Marks an in-flight message as forge-built (exempt from tampering).
    pub(crate) fn mark_injected(&mut self, msg: u64) {
        self.injected_msgs.insert(msg);
    }

    /// True (once) if `msg` was an injected frame; clears the mark.
    pub(crate) fn take_injected(&mut self, msg: u64) -> bool {
        self.injected_msgs.remove(&msg)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(raw: u64) -> NodeId {
        NodeId::from_raw(raw)
    }

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn empty_plan_is_empty_and_inert() {
        let plan = AdversaryPlan::new();
        assert!(plan.is_empty());
        let mut engine = AdversaryEngine::new(42);
        assert!(engine.install(plan).is_empty());
        assert!(!engine.installed());
        assert!(!engine.has_partitions());
        assert!(!engine.has_hostiles());
    }

    #[test]
    fn partition_window_cuts_across_the_island_boundary_only() {
        let w = PartitionWindow {
            from: t(10),
            until: t(20),
            island: [n(1), n(2)].into_iter().collect(),
        };
        assert!(w.cuts(n(1), n(3)));
        assert!(w.cuts(n(3), n(2)));
        assert!(!w.cuts(n(1), n(2)), "both inside: no cut");
        assert!(!w.cuts(n(3), n(4)), "both outside: no cut");
        assert!(!w.active_at(t(9)));
        assert!(w.active_at(t(10)));
        assert!(w.active_at(t(19)));
        assert!(!w.active_at(t(20)), "heal instant is exclusive");
    }

    #[test]
    fn engine_partitioned_respects_windows_and_time() {
        let mut engine = AdversaryEngine::new(7);
        let plan = AdversaryPlan::new().partition(t(10), t(20), [n(0)]);
        let schedule = engine.install(plan);
        assert_eq!(schedule.len(), 2, "one start + one end event");
        assert!(engine.has_partitions());
        assert!(!engine.partitioned(n(0), n(1), t(5)));
        assert!(engine.partitioned(n(0), n(1), t(15)));
        assert!(!engine.partitioned(n(1), n(2), t(15)), "same side stays connected");
        assert!(!engine.partitioned(n(0), n(1), t(20)), "healed");
        assert_eq!(engine.partitions_active_at(t(15)), 1);
        assert_eq!(engine.partitions_active_at(t(25)), 0);
    }

    #[test]
    fn overlapping_windows_both_count() {
        let mut engine = AdversaryEngine::new(7);
        engine.install(
            AdversaryPlan::new()
                .partition(t(10), t(30), [n(0)])
                .partition(t(20), t(40), [n(5)]),
        );
        assert_eq!(engine.partitions_active_at(t(25)), 2);
        assert!(engine.partitioned(n(5), n(1), t(35)));
        assert!(!engine.partitioned(n(5), n(1), t(15)));
    }

    #[test]
    fn compromise_schedule_ticks_at_the_interval() {
        let mut engine = AdversaryEngine::new(7);
        let plan = AdversaryPlan::new().compromise(n(3), t(10), t(13), SimDuration::from_secs(1));
        let schedule = engine.install(plan);
        let times: Vec<SimTime> = schedule.iter().map(|&(at, _)| at).collect();
        assert_eq!(times, vec![t(10), t(11), t(12)], "until is exclusive");
        assert!(engine.is_compromised(n(3), t(10)));
        assert!(engine.is_compromised(n(3), t(12)));
        assert!(!engine.is_compromised(n(3), t(13)));
        assert!(!engine.is_compromised(n(4), t(11)));
    }

    #[test]
    fn installing_a_second_plan_extends_the_first() {
        let mut engine = AdversaryEngine::new(7);
        engine.install(AdversaryPlan::new().partition(t(10), t(20), [n(0)]));
        engine.install(AdversaryPlan::new().partition(t(30), t(40), [n(1)]));
        assert!(engine.partitioned(n(0), n(1), t(15)));
        assert!(engine.partitioned(n(1), n(2), t(35)));
        assert!(!engine.partitioned(n(0), n(2), t(35)));
    }

    #[test]
    fn tamper_and_sniff_do_nothing_without_a_forge() {
        let mut engine = AdversaryEngine::new(7);
        engine.install(AdversaryPlan::new().compromise(n(1), t(0), t(100), SimDuration::from_secs(1)));
        let payload = Payload::copy_from_slice(b"hello");
        assert!(engine.tamper(n(1), &payload, t(5)).is_none());
        engine.sniff(n(1), &payload, t(5));
        assert!(engine.sniffed.is_empty());
        assert_eq!(engine.stats.frames_tampered, 0);
    }

    struct XorForge;
    impl FrameForge for XorForge {
        fn tamper(&mut self, _attacker: NodeId, payload: &Payload, _rng: &mut SimRng) -> Option<Payload> {
            let mut bytes = payload.to_vec();
            for b in &mut bytes {
                *b ^= 0xFF;
            }
            Some(bytes.into())
        }
        fn forge(
            &mut self,
            _attacker: NodeId,
            _peer: NodeId,
            sniffed: &[Payload],
            _rng: &mut SimRng,
        ) -> Option<Payload> {
            sniffed.first().cloned()
        }
    }

    #[test]
    fn tamper_applies_only_inside_the_compromise_window() {
        let mut engine = AdversaryEngine::new(7);
        engine.forge = Some(Box::new(XorForge));
        engine.install(AdversaryPlan::new().compromise(n(1), t(10), t(20), SimDuration::from_secs(1)));
        let payload = Payload::copy_from_slice(&[0x0F]);
        assert!(engine.tamper(n(1), &payload, t(5)).is_none(), "before the window");
        assert!(engine.tamper(n(2), &payload, t(15)).is_none(), "honest sender");
        let tampered = engine.tamper(n(1), &payload, t(15)).expect("inside the window");
        assert_eq!(tampered.as_slice(), &[0xF0]);
        assert_eq!(engine.stats.frames_tampered, 1);
    }

    #[test]
    fn sniff_ring_is_bounded_and_feeds_forgery() {
        let mut engine = AdversaryEngine::new(7);
        engine.forge = Some(Box::new(XorForge));
        engine.install(AdversaryPlan::new().compromise(n(1), t(0), t(100), SimDuration::from_secs(1)));
        for i in 0..(SNIFF_CAPACITY + 5) {
            engine.sniff(n(1), &Payload::copy_from_slice(&[i as u8]), t(1));
        }
        assert_eq!(engine.sniffed.len(), SNIFF_CAPACITY);
        let forged = engine.forge_injection(n(1), n(2)).expect("replays a sniffed frame");
        assert_eq!(forged.len(), 1);
        assert_eq!(engine.stats.frames_injected, 1);
    }

    #[test]
    fn adversary_rng_stream_is_seed_deterministic_and_label_isolated() {
        let mut a = AdversaryEngine::new(42);
        let mut b = AdversaryEngine::new(42);
        let draws_a: Vec<u64> = (0..8).map(|_| a.rng.next_u64()).collect();
        let draws_b: Vec<u64> = (0..8).map(|_| b.rng.next_u64()).collect();
        assert_eq!(draws_a, draws_b);
        // The stream differs from both the world stream and the fault stream.
        let mut world = SimRng::new(42);
        let world_draws: Vec<u64> = (0..8).map(|_| world.next_u64()).collect();
        assert_ne!(draws_a, world_draws);
    }

    #[test]
    fn stats_totals() {
        let stats = AdversaryStats {
            frames_tampered: 3,
            frames_injected: 4,
            ..AdversaryStats::default()
        };
        assert_eq!(stats.frames_hostile(), 7);
    }
}
