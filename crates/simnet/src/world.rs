//! The simulation world: nodes, radios, links and the event loop.
//!
//! [`World`] owns every node (with its [`NodeAgent`] behaviour), compiles
//! mobility plans, models discovery inquiries, connection establishment,
//! message transmission and link breakage, and advances virtual time through
//! a deterministic event loop. Agents act on the world through [`NodeCtx`].

use std::collections::{BTreeMap, BTreeSet};

use crate::event::Scheduler;
use crate::geometry::{Point, Rect};
use crate::link::{InFlightMessage, LinkInfo, LinkState, PendingAttempt, QualityOverride};
use crate::metrics::Metrics;
use crate::mobility::{MobilityModel, MotionPlan};
use crate::node::{
    AttemptId, ConnectError, DisconnectReason, IncomingConnection, InquiryHit, LinkId, NodeAgent, NodeId, TimerToken,
};
use crate::radio::{RadioEnvironment, RadioTech};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Static configuration of a simulation world.
#[derive(Debug, Clone)]
pub struct WorldConfig {
    /// Master seed; every stochastic decision derives from it.
    pub seed: u64,
    /// Radio technology profiles in force.
    pub radio: RadioEnvironment,
    /// Horizon up to which mobility plans are compiled. Position queries past
    /// the horizon return the final planned position.
    pub mobility_horizon: SimTime,
    /// How often established links are checked for coverage loss.
    pub link_check_interval: SimDuration,
    /// Areas without cellular coverage (the tunnel of Fig. 6.1). Only affects
    /// GPRS.
    pub gprs_dead_zones: Vec<Rect>,
}

impl Default for WorldConfig {
    fn default() -> Self {
        WorldConfig {
            seed: 0,
            radio: RadioEnvironment::default(),
            mobility_horizon: SimTime::from_secs(4 * 3600),
            link_check_interval: SimDuration::from_millis(500),
            gprs_dead_zones: Vec::new(),
        }
    }
}

impl WorldConfig {
    /// A default configuration with the given seed.
    pub fn with_seed(seed: u64) -> Self {
        WorldConfig {
            seed,
            ..WorldConfig::default()
        }
    }

    /// A configuration with ideal (fault-free, instant-setup) radios, for
    /// tests exercising middleware logic rather than radio behaviour.
    pub fn ideal(seed: u64) -> Self {
        WorldConfig {
            seed,
            radio: RadioEnvironment::ideal(),
            ..WorldConfig::default()
        }
    }
}

/// Sending on a link can fail if the link no longer exists locally.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SendError {
    /// The link id is unknown.
    UnknownLink,
    /// The link has been closed.
    Closed,
    /// The sending node is not an endpoint of the link.
    NotEndpoint,
}

impl std::fmt::Display for SendError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            SendError::UnknownLink => "unknown link",
            SendError::Closed => "link closed",
            SendError::NotEndpoint => "node is not an endpoint of the link",
        };
        f.write_str(s)
    }
}

impl std::error::Error for SendError {}

#[derive(Debug, Clone)]
enum Event {
    NodeStart(NodeId),
    Timer { node: NodeId, token: TimerToken },
    InquiryComplete { node: NodeId, tech: RadioTech },
    ConnectResolve { attempt: AttemptId },
    Deliver { msg: u64 },
    LinkCheck { link: LinkId },
    Disconnect { link: LinkId, closer: NodeId },
}

struct NodeSlot {
    id: NodeId,
    name: String,
    plan: MotionPlan,
    techs: BTreeSet<RadioTech>,
    discoverable: BTreeSet<RadioTech>,
    inquiring_until: BTreeMap<RadioTech, SimTime>,
    agent: Option<Box<dyn NodeAgent>>,
    rng: SimRng,
    alive: bool,
}

/// The simulation world. See the crate-level documentation for an overview.
pub struct World {
    config: WorldConfig,
    now: SimTime,
    scheduler: Scheduler<Event>,
    nodes: Vec<NodeSlot>,
    links: BTreeMap<LinkId, LinkState>,
    attempts: BTreeMap<AttemptId, PendingAttempt>,
    in_flight: BTreeMap<u64, InFlightMessage>,
    metrics: Metrics,
    rng: SimRng,
    next_link: u64,
    next_attempt: u64,
    next_msg: u64,
}

impl World {
    /// Creates a world from a configuration.
    pub fn new(config: WorldConfig) -> Self {
        let rng = SimRng::new(config.seed);
        World {
            config,
            now: SimTime::ZERO,
            scheduler: Scheduler::new(),
            nodes: Vec::new(),
            links: BTreeMap::new(),
            attempts: BTreeMap::new(),
            in_flight: BTreeMap::new(),
            metrics: Metrics::new(),
            rng,
            next_link: 0,
            next_attempt: 0,
            next_msg: 0,
        }
    }

    /// Creates a world with default configuration and the given seed.
    pub fn with_seed(seed: u64) -> Self {
        World::new(WorldConfig::with_seed(seed))
    }

    /// Adds a node with the given behaviour. The agent's
    /// [`NodeAgent::on_start`] callback runs at the current simulation time
    /// once the event loop next advances.
    pub fn add_node(
        &mut self,
        name: impl Into<String>,
        mobility: MobilityModel,
        techs: &[RadioTech],
        agent: Box<dyn NodeAgent>,
    ) -> NodeId {
        let id = NodeId::from_raw(self.nodes.len() as u64);
        let mut node_rng = self.rng.derive(0x4E4F_4445_0000_0000 | id.as_raw());
        let plan = mobility.compile(self.config.mobility_horizon, &mut node_rng);
        let techs_set: BTreeSet<RadioTech> = techs.iter().copied().collect();
        self.nodes.push(NodeSlot {
            id,
            name: name.into(),
            plan,
            discoverable: techs_set.clone(),
            techs: techs_set,
            inquiring_until: BTreeMap::new(),
            agent: Some(agent),
            rng: node_rng,
            alive: true,
        });
        self.scheduler.schedule(self.now, Event::NodeStart(id));
        id
    }

    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The world configuration.
    pub fn config(&self) -> &WorldConfig {
        &self.config
    }

    /// Accumulated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Number of nodes ever added.
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Iterator over all node ids.
    pub fn node_ids(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.nodes.iter().map(|n| n.id)
    }

    /// The human-readable name given to a node.
    pub fn node_name(&self, node: NodeId) -> Option<&str> {
        self.slot(node).map(|s| s.name.as_str())
    }

    /// Whether a node is still powered on.
    pub fn is_alive(&self, node: NodeId) -> bool {
        self.slot(node).map(|s| s.alive).unwrap_or(false)
    }

    /// Position of a node at the current simulation time.
    pub fn position_of(&self, node: NodeId) -> Option<Point> {
        self.slot(node).map(|s| s.plan.position_at(self.now))
    }

    /// Distance in metres between two nodes at the current time.
    pub fn distance_between(&self, a: NodeId, b: NodeId) -> Option<f64> {
        Some(self.position_of(a)?.distance(self.position_of(b)?))
    }

    /// True if `a` and `b` can currently communicate over `tech`.
    pub fn in_range(&self, a: NodeId, b: NodeId, tech: RadioTech) -> bool {
        let (pa, pb) = match (self.position_of(a), self.position_of(b)) {
            (Some(pa), Some(pb)) => (pa, pb),
            _ => return false,
        };
        self.pair_in_range(pa, pb, tech)
    }

    fn pair_in_range(&self, pa: Point, pb: Point, tech: RadioTech) -> bool {
        if tech == RadioTech::Gprs {
            let dead = |p: Point| self.config.gprs_dead_zones.iter().any(|z| z.contains(p));
            return !dead(pa) && !dead(pb);
        }
        let profile = self.config.radio.profile(tech);
        profile.in_range(pa.distance(pb))
    }

    /// Ground-truth list of nodes within radio range of `node` for `tech`
    /// (regardless of discoverability). Used by experiments that need the
    /// true topology to compare discovery results against.
    pub fn neighbors_in_range(&self, node: NodeId, tech: RadioTech) -> Vec<NodeId> {
        let pos = match self.position_of(node) {
            Some(p) => p,
            None => return Vec::new(),
        };
        self.nodes
            .iter()
            .filter(|other| other.id != node && other.alive && other.techs.contains(&tech))
            .filter(|other| self.pair_in_range(pos, other.plan.position_at(self.now), tech))
            .map(|other| other.id)
            .collect()
    }

    /// Snapshot of a link.
    pub fn link_info(&self, link: LinkId) -> Option<LinkInfo> {
        self.links.get(&link).map(LinkInfo::from)
    }

    /// Snapshots of every link (open or closed) that has `node` as an endpoint.
    pub fn links_of(&self, node: NodeId) -> Vec<LinkInfo> {
        self.links
            .values()
            .filter(|l| l.has_endpoint(node))
            .map(LinkInfo::from)
            .collect()
    }

    /// Current quality of an open link, or `None` if the link is closed,
    /// unknown or out of range.
    pub fn link_quality(&mut self, link: LinkId) -> Option<u8> {
        let state = self.links.get(&link)?;
        if !state.open {
            return None;
        }
        if let Some(ov) = state.quality_override {
            return Some(ov.value_at(self.now));
        }
        let (a, b, tech) = (state.a, state.b, state.tech);
        let distance = self.distance_between(a, b)?;
        if !self.pair_in_range(self.position_of(a)?, self.position_of(b)?, tech) {
            return None;
        }
        let profile = self.config.radio.profile(tech).clone();
        let slot = self.slot_mut(a)?;
        profile.sample_quality(distance, &mut slot.rng)
    }

    /// Installs an artificial quality override on a link (the thesis'
    /// "subtract 1 per second" simulation of §5.2.1). The link breaks once
    /// the override reaches zero.
    pub fn set_link_quality_override(&mut self, link: LinkId, initial: f64, decay_per_sec: f64) {
        let now = self.now;
        if let Some(state) = self.links.get_mut(&link) {
            state.quality_override = Some(QualityOverride {
                set_at: now,
                initial,
                decay_per_sec,
            });
        }
    }

    /// Removes an artificial quality override.
    pub fn clear_link_quality_override(&mut self, link: LinkId) {
        if let Some(state) = self.links.get_mut(&link) {
            state.quality_override = None;
        }
    }

    /// Powers a node off: every open link it participates in breaks and the
    /// surviving peers are notified. Used for failure-injection tests.
    ///
    /// # Panics
    ///
    /// Must not be called from inside an agent callback.
    pub fn crash_node(&mut self, node: NodeId) {
        if let Some(slot) = self.slot_mut(node) {
            if !slot.alive {
                return;
            }
            slot.alive = false;
        } else {
            return;
        }
        let affected: Vec<(LinkId, NodeId)> = self
            .links
            .values()
            .filter(|l| l.open && l.has_endpoint(node))
            .filter_map(|l| l.peer_of(node).map(|peer| (l.id, peer)))
            .collect();
        for (link, peer) in affected {
            if let Some(state) = self.links.get_mut(&link) {
                state.open = false;
            }
            self.metrics.record_link_broken(peer);
            self.metrics.record_link_broken(node);
            self.agent_call(peer, |agent, ctx| {
                agent.on_disconnected(ctx, link, node, DisconnectReason::PeerFailed);
            });
        }
    }

    /// Runs the event loop until simulation time `deadline` and then sets the
    /// clock to `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        while let Some((time, event)) = self.scheduler.pop_due(deadline) {
            self.now = self.now.max(time);
            self.handle(event);
        }
        self.now = self.now.max(deadline);
    }

    /// Runs for a further span of simulated time.
    pub fn run_for(&mut self, duration: SimDuration) {
        let deadline = self.now + duration;
        self.run_until(deadline);
    }

    /// Runs until no events remain or `limit` is reached, returning the time
    /// at which the loop stopped.
    pub fn run_until_idle(&mut self, limit: SimTime) -> SimTime {
        while let Some((time, event)) = self.scheduler.pop_due(limit) {
            self.now = self.now.max(time);
            self.handle(event);
        }
        if self.scheduler.peek_time().is_none() {
            self.now
        } else {
            self.now = self.now.max(limit);
            self.now
        }
    }

    /// Gives typed access to a node's agent together with a [`NodeCtx`], so
    /// scenario drivers can invoke application-level operations ("connect to
    /// that service now") between event-loop runs.
    ///
    /// Returns `None` if the node does not exist, is powered off, or its
    /// agent is not of type `A`.
    pub fn with_agent<A, R>(&mut self, node: NodeId, f: impl FnOnce(&mut A, &mut NodeCtx<'_>) -> R) -> Option<R>
    where
        A: NodeAgent + 'static,
    {
        let idx = node.as_raw() as usize;
        if idx >= self.nodes.len() || !self.nodes[idx].alive {
            return None;
        }
        let mut agent = self.nodes[idx].agent.take()?;
        let result = {
            let mut ctx = NodeCtx { world: self, node };
            agent.as_any_mut().downcast_mut::<A>().map(|typed| f(typed, &mut ctx))
        };
        self.nodes[idx].agent = Some(agent);
        result
    }

    fn slot(&self, node: NodeId) -> Option<&NodeSlot> {
        self.nodes.get(node.as_raw() as usize)
    }

    fn slot_mut(&mut self, node: NodeId) -> Option<&mut NodeSlot> {
        self.nodes.get_mut(node.as_raw() as usize)
    }

    fn agent_call<R>(&mut self, node: NodeId, f: impl FnOnce(&mut dyn NodeAgent, &mut NodeCtx<'_>) -> R) -> Option<R> {
        let idx = node.as_raw() as usize;
        if idx >= self.nodes.len() || !self.nodes[idx].alive {
            return None;
        }
        let mut agent = self.nodes[idx].agent.take()?;
        let result = {
            let mut ctx = NodeCtx { world: self, node };
            f(agent.as_mut(), &mut ctx)
        };
        self.nodes[idx].agent = Some(agent);
        Some(result)
    }

    fn handle(&mut self, event: Event) {
        match event {
            Event::NodeStart(node) => {
                self.agent_call(node, |agent, ctx| agent.on_start(ctx));
            }
            Event::Timer { node, token } => {
                self.agent_call(node, |agent, ctx| agent.on_timer(ctx, token));
            }
            Event::InquiryComplete { node, tech } => self.complete_inquiry(node, tech),
            Event::ConnectResolve { attempt } => self.resolve_attempt(attempt),
            Event::Deliver { msg } => self.deliver(msg),
            Event::LinkCheck { link } => self.check_link(link),
            Event::Disconnect { link, closer } => self.graceful_disconnect(link, closer),
        }
    }

    fn complete_inquiry(&mut self, node: NodeId, tech: RadioTech) {
        let pos = match self.position_of(node) {
            Some(p) => p,
            None => return,
        };
        if !self.is_alive(node) {
            return;
        }
        let profile = self.config.radio.profile(tech).clone();
        let now = self.now;

        // Collect candidate peers first (immutable pass), then sample
        // miss/quality with the inquirer's RNG.
        let candidates: Vec<(NodeId, f64)> = self
            .nodes
            .iter()
            .filter(|other| other.id != node && other.alive)
            .filter(|other| other.techs.contains(&tech) && other.discoverable.contains(&tech))
            .filter(|other| {
                // Bluetooth asymmetry (§3.4.2): a device that is itself
                // scanning is not discoverable.
                !(profile.inquiry_asymmetric
                    && other
                        .inquiring_until
                        .get(&tech)
                        .map(|until| *until > now)
                        .unwrap_or(false))
            })
            .map(|other| (other.id, pos.distance(other.plan.position_at(now))))
            .filter(|(other_id, d)| {
                if tech == RadioTech::Gprs {
                    let other_pos = self
                        .slot(*other_id)
                        .map(|s| s.plan.position_at(now))
                        .unwrap_or(Point::ORIGIN);
                    self.pair_in_range(pos, other_pos, tech)
                } else {
                    profile.in_range(*d)
                }
            })
            .collect();

        let mut hits = Vec::new();
        {
            let slot = match self.slot_mut(node) {
                Some(s) => s,
                None => return,
            };
            for (peer, distance) in candidates {
                if slot.rng.chance(profile.inquiry_miss_prob) {
                    continue;
                }
                if let Some(quality) = profile.sample_quality(distance, &mut slot.rng) {
                    hits.push(InquiryHit {
                        node: peer,
                        tech,
                        quality,
                    });
                }
            }
            // The scan is over: the node becomes discoverable again.
            if let Some(until) = slot.inquiring_until.get(&tech).copied() {
                if until <= now {
                    slot.inquiring_until.remove(&tech);
                }
            }
        }
        self.metrics.record_inquiry_hits(node, hits.len() as u64);
        self.agent_call(node, |agent, ctx| agent.on_inquiry_complete(ctx, tech, hits));
    }

    fn resolve_attempt(&mut self, attempt: AttemptId) {
        let pending = match self.attempts.remove(&attempt) {
            Some(p) => p,
            None => return,
        };
        let PendingAttempt { id, from, to, tech, .. } = pending;

        let fail = |world: &mut World, error: ConnectError| {
            world.metrics.record_connect_failure(from);
            world.agent_call(from, |agent, ctx| {
                agent.on_connect_failed(ctx, id, to, tech, error);
            });
        };

        if !self.is_alive(from) {
            return;
        }
        let target_ok = self
            .slot(to)
            .map(|s| s.alive && s.techs.contains(&tech))
            .unwrap_or(false);
        if !target_ok {
            fail(self, ConnectError::Unreachable);
            return;
        }
        if !self.in_range(from, to, tech) {
            fail(self, ConnectError::OutOfRange);
            return;
        }
        let profile = self.config.radio.profile(tech).clone();
        let faulted = {
            let slot = match self.slot_mut(from) {
                Some(s) => s,
                None => return,
            };
            profile.sample_setup_fault(&mut slot.rng)
        };
        if faulted {
            fail(self, ConnectError::Fault);
            return;
        }

        let link = LinkId(self.next_link);
        self.next_link += 1;
        let accepted = self
            .agent_call(to, |agent, ctx| {
                agent.on_incoming_connection(ctx, IncomingConnection { from, tech, link })
            })
            .unwrap_or(false);
        if !accepted {
            fail(self, ConnectError::Rejected);
            return;
        }
        self.links.insert(
            link,
            LinkState {
                id: link,
                a: from,
                b: to,
                tech,
                established_at: self.now,
                open: true,
                closed_gracefully: false,
                quality_override: None,
            },
        );
        self.metrics.record_connect_established(from);
        let check_at = self.now + self.config.link_check_interval;
        self.scheduler.schedule(check_at, Event::LinkCheck { link });
        self.agent_call(from, |agent, ctx| {
            agent.on_connected(ctx, id, link, to, tech);
        });
    }

    fn deliver(&mut self, msg: u64) {
        let in_flight = match self.in_flight.remove(&msg) {
            Some(m) => m,
            None => return,
        };
        // Payloads already in flight when an endpoint closed the link
        // gracefully are still delivered (the socket buffer flushes); only a
        // physical break (out of range, crash) loses them.
        let deliverable = self
            .links
            .get(&in_flight.link)
            .map(|l| l.open || l.closed_gracefully)
            .unwrap_or(false);
        if !deliverable || !self.is_alive(in_flight.to) {
            self.metrics.record_message_lost(in_flight.to);
            return;
        }
        self.metrics.record_message_delivered(in_flight.to);
        let InFlightMessage {
            link,
            from,
            to,
            payload,
            ..
        } = in_flight;
        self.agent_call(to, |agent, ctx| agent.on_message(ctx, link, from, payload));
    }

    fn check_link(&mut self, link: LinkId) {
        let (a, b, tech, open, exhausted) = match self.links.get(&link) {
            Some(l) => (
                l.a,
                l.b,
                l.tech,
                l.open,
                l.quality_override.map(|ov| ov.exhausted_at(self.now)).unwrap_or(false),
            ),
            None => return,
        };
        if !open {
            return;
        }
        let a_alive = self.is_alive(a);
        let b_alive = self.is_alive(b);
        let physically_broken = if self.links.get(&link).and_then(|l| l.quality_override).is_some() {
            exhausted
        } else {
            !self.in_range(a, b, tech)
        };
        if !a_alive || !b_alive || physically_broken {
            if let Some(state) = self.links.get_mut(&link) {
                state.open = false;
            }
            self.metrics.record_link_broken(a);
            self.metrics.record_link_broken(b);
            let reason_for = |peer_alive: bool| {
                if peer_alive {
                    DisconnectReason::OutOfRange
                } else {
                    DisconnectReason::PeerFailed
                }
            };
            if a_alive {
                self.agent_call(a, |agent, ctx| {
                    agent.on_disconnected(ctx, link, b, reason_for(b_alive));
                });
            }
            if b_alive {
                self.agent_call(b, |agent, ctx| {
                    agent.on_disconnected(ctx, link, a, reason_for(a_alive));
                });
            }
            return;
        }
        let next = self.now + self.config.link_check_interval;
        self.scheduler.schedule(next, Event::LinkCheck { link });
    }

    fn graceful_disconnect(&mut self, link: LinkId, closer: NodeId) {
        // Preserve FIFO ordering with respect to payloads already in flight
        // towards the peer: the close notification must not overtake data
        // written before the close (socket buffers drain first).
        let last_delivery = self
            .in_flight
            .values()
            .filter(|m| m.link == link)
            .map(|m| m.deliver_at)
            .max();
        if let Some(t) = last_delivery {
            if t >= self.now {
                self.scheduler
                    .schedule(t + SimDuration::from_micros(1), Event::Disconnect { link, closer });
                return;
            }
        }
        let peer = match self.links.get_mut(&link) {
            Some(state) if state.open => {
                state.open = false;
                state.closed_gracefully = true;
                state.peer_of(closer)
            }
            _ => return,
        };
        if let Some(peer) = peer {
            self.agent_call(peer, |agent, ctx| {
                agent.on_disconnected(ctx, link, closer, DisconnectReason::PeerClosed);
            });
        }
    }
}

/// Handle through which an agent (or a scenario driver holding
/// [`World::with_agent`]) acts on the world on behalf of one node.
pub struct NodeCtx<'a> {
    world: &'a mut World,
    node: NodeId,
}

impl<'a> NodeCtx<'a> {
    /// Current simulation time.
    pub fn now(&self) -> SimTime {
        self.world.now
    }

    /// The node this context acts for.
    pub fn node_id(&self) -> NodeId {
        self.node
    }

    /// Current position of this node.
    pub fn position(&self) -> Point {
        self.world.position_of(self.node).unwrap_or(Point::ORIGIN)
    }

    /// This node's deterministic random stream.
    pub fn rng(&mut self) -> &mut SimRng {
        &mut self
            .world
            .slot_mut(self.node)
            .expect("node exists while ctx is alive")
            .rng
    }

    /// Schedules a timer that will fire `after` from now with the given
    /// opaque token.
    pub fn schedule(&mut self, after: SimDuration, token: TimerToken) {
        let at = self.world.now + after;
        self.world
            .scheduler
            .schedule(at, Event::Timer { node: self.node, token });
    }

    /// Starts a device-discovery inquiry on `tech`. The result arrives via
    /// [`NodeAgent::on_inquiry_complete`] after the technology's inquiry
    /// duration. While scanning, a Bluetooth device is not discoverable by
    /// others (the asymmetry of §3.4.2).
    pub fn start_inquiry(&mut self, tech: RadioTech) {
        let duration = self.world.config.radio.profile(tech).inquiry_duration;
        let node = self.node;
        let finish = self.world.now + duration;
        if let Some(slot) = self.world.slot_mut(node) {
            if !slot.techs.contains(&tech) {
                return;
            }
            let entry = slot.inquiring_until.entry(tech).or_insert(finish);
            *entry = (*entry).max(finish);
        } else {
            return;
        }
        self.world.metrics.record_inquiry_started(node);
        self.world
            .scheduler
            .schedule(finish, Event::InquiryComplete { node, tech });
    }

    /// Controls whether this node answers discovery inquiries on `tech`.
    pub fn set_discoverable(&mut self, tech: RadioTech, discoverable: bool) {
        let node = self.node;
        if let Some(slot) = self.world.slot_mut(node) {
            if discoverable {
                if slot.techs.contains(&tech) {
                    slot.discoverable.insert(tech);
                }
            } else {
                slot.discoverable.remove(&tech);
            }
        }
    }

    /// Initiates a connection to `peer` over `tech`. Resolution (success or
    /// failure) is reported asynchronously through
    /// [`NodeAgent::on_connected`] / [`NodeAgent::on_connect_failed`] after a
    /// technology-dependent setup latency.
    pub fn connect(&mut self, peer: NodeId, tech: RadioTech) -> AttemptId {
        let id = AttemptId(self.world.next_attempt);
        self.world.next_attempt += 1;
        let node = self.node;
        self.world.metrics.record_connect_attempt(node);
        let profile = self.world.config.radio.profile(tech).clone();
        let latency = {
            let slot = self.world.slot_mut(node).expect("node exists while ctx is alive");
            profile.sample_setup_latency(&mut slot.rng)
        };
        self.world.attempts.insert(
            id,
            PendingAttempt {
                id,
                from: node,
                to: peer,
                tech,
                started_at: self.world.now,
            },
        );
        let resolve_at = self.world.now + latency;
        self.world
            .scheduler
            .schedule(resolve_at, Event::ConnectResolve { attempt: id });
        id
    }

    /// Sends a payload over an open link. Delivery is asynchronous; if the
    /// link breaks while the payload is in flight the message is silently
    /// lost (the data-loss risk §6.1 points out for the original `Write`).
    ///
    /// # Errors
    ///
    /// Returns an error if the link is unknown, closed, or this node is not
    /// one of its endpoints.
    pub fn send(&mut self, link: LinkId, payload: Vec<u8>) -> Result<(), SendError> {
        let node = self.node;
        let (to, tech) = {
            let state = self.world.links.get(&link).ok_or(SendError::UnknownLink)?;
            if !state.open {
                return Err(SendError::Closed);
            }
            let to = state.peer_of(node).ok_or(SendError::NotEndpoint)?;
            (to, state.tech)
        };
        let profile = self.world.config.radio.profile(tech);
        let delay = profile.transmission_delay(payload.len());
        self.world.metrics.record_message_sent(node, tech, payload.len() as u64);
        let msg = self.world.next_msg;
        self.world.next_msg += 1;
        let deliver_at = self.world.now + delay;
        self.world.in_flight.insert(
            msg,
            InFlightMessage {
                link,
                from: node,
                to,
                payload,
                deliver_at,
            },
        );
        self.world.scheduler.schedule(deliver_at, Event::Deliver { msg });
        Ok(())
    }

    /// Closes an open link. The peer is notified asynchronously with
    /// [`DisconnectReason::PeerClosed`].
    pub fn close(&mut self, link: LinkId) {
        let node = self.node;
        let is_endpoint = self
            .world
            .links
            .get(&link)
            .map(|l| l.open && l.has_endpoint(node))
            .unwrap_or(false);
        if !is_endpoint {
            return;
        }
        let at = self.world.now;
        self.world
            .scheduler
            .schedule(at, Event::Disconnect { link, closer: node });
    }

    /// Samples the current quality of an open link (0-255), or `None` if the
    /// link is closed or out of range. Mirrors listening on the HCI channel
    /// for RSSI / link quality (§3.4.1).
    pub fn link_quality(&mut self, link: LinkId) -> Option<u8> {
        let node = self.node;
        self.world.metrics.record_quality_sample(node);
        self.world.link_quality(link)
    }

    /// Read-only snapshot of a link.
    pub fn link_info(&self, link: LinkId) -> Option<LinkInfo> {
        self.world.link_info(link)
    }

    /// Installs the artificial quality decay of §5.2.1 on a link.
    pub fn set_link_quality_override(&mut self, link: LinkId, initial: f64, decay_per_sec: f64) {
        self.world.set_link_quality_override(link, initial, decay_per_sec);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::any::Any;
    use std::collections::VecDeque;

    /// A minimal scriptable agent used to exercise the world mechanics.
    #[derive(Default)]
    struct Probe {
        started: bool,
        timers: Vec<TimerToken>,
        inquiry_results: Vec<(RadioTech, Vec<InquiryHit>)>,
        connected: Vec<(AttemptId, LinkId, NodeId)>,
        failed: Vec<(AttemptId, ConnectError)>,
        incoming: Vec<IncomingConnection>,
        accept_incoming: bool,
        messages: Vec<(LinkId, Vec<u8>)>,
        disconnects: Vec<(LinkId, DisconnectReason)>,
        echo: bool,
    }

    impl Probe {
        fn accepting() -> Self {
            Probe {
                accept_incoming: true,
                ..Probe::default()
            }
        }
        fn echoing() -> Self {
            Probe {
                accept_incoming: true,
                echo: true,
                ..Probe::default()
            }
        }
    }

    impl NodeAgent for Probe {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn on_start(&mut self, _ctx: &mut NodeCtx<'_>) {
            self.started = true;
        }
        fn on_timer(&mut self, _ctx: &mut NodeCtx<'_>, timer: TimerToken) {
            self.timers.push(timer);
        }
        fn on_inquiry_complete(&mut self, _ctx: &mut NodeCtx<'_>, tech: RadioTech, hits: Vec<InquiryHit>) {
            self.inquiry_results.push((tech, hits));
        }
        fn on_incoming_connection(&mut self, _ctx: &mut NodeCtx<'_>, incoming: IncomingConnection) -> bool {
            self.incoming.push(incoming);
            self.accept_incoming
        }
        fn on_connected(
            &mut self,
            _ctx: &mut NodeCtx<'_>,
            attempt: AttemptId,
            link: LinkId,
            peer: NodeId,
            _tech: RadioTech,
        ) {
            self.connected.push((attempt, link, peer));
        }
        fn on_connect_failed(
            &mut self,
            _ctx: &mut NodeCtx<'_>,
            attempt: AttemptId,
            _peer: NodeId,
            _tech: RadioTech,
            error: ConnectError,
        ) {
            self.failed.push((attempt, error));
        }
        fn on_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, _from: NodeId, payload: Vec<u8>) {
            if self.echo {
                let mut reply = payload.clone();
                reply.reverse();
                let _ = ctx.send(link, reply);
            }
            self.messages.push((link, payload));
        }
        fn on_disconnected(&mut self, _ctx: &mut NodeCtx<'_>, link: LinkId, _peer: NodeId, reason: DisconnectReason) {
            self.disconnects.push((link, reason));
        }
    }

    fn ideal_world(seed: u64) -> World {
        World::new(WorldConfig::ideal(seed))
    }

    fn bt() -> [RadioTech; 1] {
        [RadioTech::Bluetooth]
    }

    #[test]
    fn start_and_timer_delivery() {
        let mut w = ideal_world(1);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::ORIGIN),
            &bt(),
            Box::new(Probe::default()),
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(a, |p, ctx| {
            assert!(p.started);
            ctx.schedule(SimDuration::from_secs(5), TimerToken(99));
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(4));
        w.with_agent::<Probe, _>(a, |p, _| assert!(p.timers.is_empty()))
            .unwrap();
        w.run_for(SimDuration::from_secs(2));
        w.with_agent::<Probe, _>(a, |p, _| assert_eq!(p.timers, vec![TimerToken(99)]))
            .unwrap();
    }

    #[test]
    fn inquiry_finds_only_nodes_in_range() {
        let mut w = ideal_world(2);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let b = w.add_node(
            "b",
            MobilityModel::stationary(Point::new(5.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let _far = w.add_node(
            "far",
            MobilityModel::stationary(Point::new(100.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(a, |_, ctx| ctx.start_inquiry(RadioTech::Bluetooth))
            .unwrap();
        w.run_for(SimDuration::from_secs(15));
        w.with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.inquiry_results.len(), 1);
            let hits = &p.inquiry_results[0].1;
            assert_eq!(hits.len(), 1);
            assert_eq!(hits[0].node, b);
            assert!(hits[0].quality > 200);
        })
        .unwrap();
        assert_eq!(w.metrics().global().inquiries_started, 1);
        assert_eq!(w.metrics().global().inquiry_hits, 1);
    }

    #[test]
    fn undiscoverable_nodes_are_not_found() {
        let mut w = ideal_world(3);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let b = w.add_node(
            "b",
            MobilityModel::stationary(Point::new(3.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(b, |_, ctx| ctx.set_discoverable(RadioTech::Bluetooth, false))
            .unwrap();
        w.with_agent::<Probe, _>(a, |_, ctx| ctx.start_inquiry(RadioTech::Bluetooth))
            .unwrap();
        w.run_for(SimDuration::from_secs(15));
        w.with_agent::<Probe, _>(a, |p, _| {
            assert!(p.inquiry_results[0].1.is_empty());
        })
        .unwrap();
    }

    #[test]
    fn connect_send_and_receive() {
        let mut w = ideal_world(4);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let b = w.add_node(
            "b",
            MobilityModel::stationary(Point::new(4.0, 0.0)),
            &bt(),
            Box::new(Probe::echoing()),
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.connect(b, RadioTech::Bluetooth);
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(2));
        let link = w
            .with_agent::<Probe, _>(a, |p, _| {
                assert_eq!(p.connected.len(), 1);
                p.connected[0].1
            })
            .unwrap();
        w.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.send(link, b"hello".to_vec()).unwrap();
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(2));
        w.with_agent::<Probe, _>(b, |p, _| {
            assert_eq!(p.messages.len(), 1);
            assert_eq!(p.messages[0].1, b"hello".to_vec());
        })
        .unwrap();
        // The echoing agent reversed the payload back to a.
        w.with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.messages.len(), 1);
            assert_eq!(p.messages[0].1, b"olleh".to_vec());
        })
        .unwrap();
        assert_eq!(w.metrics().global().connects_established, 1);
        assert_eq!(w.metrics().global().messages_delivered, 2);
    }

    #[test]
    fn rejected_connection_reports_failure() {
        let mut w = ideal_world(5);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let b = w.add_node(
            "b",
            MobilityModel::stationary(Point::new(4.0, 0.0)),
            &bt(),
            Box::new(Probe::default()), // does not accept
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.connect(b, RadioTech::Bluetooth);
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(2));
        w.with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.failed.len(), 1);
            assert_eq!(p.failed[0].1, ConnectError::Rejected);
        })
        .unwrap();
        assert_eq!(w.metrics().global().connect_failures, 1);
    }

    #[test]
    fn out_of_range_connection_fails() {
        let mut w = ideal_world(6);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let b = w.add_node(
            "b",
            MobilityModel::stationary(Point::new(500.0, 0.0)),
            &bt(),
            Box::new(Probe::accepting()),
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.connect(b, RadioTech::Bluetooth);
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(2));
        w.with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.failed[0].1, ConnectError::OutOfRange);
        })
        .unwrap();
    }

    #[test]
    fn mobility_breaks_links_and_loses_in_flight_messages() {
        let mut w = ideal_world(7);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        // b walks away at 2 m/s immediately; after ~5 s it is out of the 10 m
        // Bluetooth range.
        let b = w.add_node(
            "b",
            MobilityModel::walk(Point::new(1.0, 0.0), Point::new(200.0, 0.0), 2.0),
            &bt(),
            Box::new(Probe::accepting()),
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.connect(b, RadioTech::Bluetooth);
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(1));
        let link = w
            .with_agent::<Probe, _>(a, |p, _| p.connected.first().map(|c| c.1))
            .unwrap()
            .expect("link established before b left range");
        w.run_for(SimDuration::from_secs(30));
        w.with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.disconnects.len(), 1);
            assert_eq!(p.disconnects[0], (link, DisconnectReason::OutOfRange));
        })
        .unwrap();
        assert!(w.metrics().global().links_broken >= 2);
        // Sending on the now-closed link is an error.
        let err = w
            .with_agent::<Probe, _>(a, |_, ctx| ctx.send(link, vec![1, 2, 3]))
            .unwrap();
        assert_eq!(err, Err(SendError::Closed));
    }

    #[test]
    fn graceful_close_notifies_peer() {
        let mut w = ideal_world(8);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let b = w.add_node(
            "b",
            MobilityModel::stationary(Point::new(2.0, 0.0)),
            &bt(),
            Box::new(Probe::accepting()),
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.connect(b, RadioTech::Bluetooth);
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(1));
        let link = w.with_agent::<Probe, _>(a, |p, _| p.connected[0].1).unwrap();
        w.with_agent::<Probe, _>(a, |_, ctx| ctx.close(link)).unwrap();
        w.run_for(SimDuration::from_secs(1));
        w.with_agent::<Probe, _>(b, |p, _| {
            assert_eq!(p.disconnects, vec![(link, DisconnectReason::PeerClosed)]);
        })
        .unwrap();
    }

    #[test]
    fn crash_node_fails_links() {
        let mut w = ideal_world(9);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let b = w.add_node(
            "b",
            MobilityModel::stationary(Point::new(2.0, 0.0)),
            &bt(),
            Box::new(Probe::accepting()),
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.connect(b, RadioTech::Bluetooth);
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(1));
        let link = w.with_agent::<Probe, _>(a, |p, _| p.connected[0].1).unwrap();
        w.crash_node(b);
        w.with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.disconnects, vec![(link, DisconnectReason::PeerFailed)]);
        })
        .unwrap();
        assert!(!w.is_alive(b));
        // The dead node can no longer be driven.
        assert!(w.with_agent::<Probe, _>(b, |_, _| ()).is_none());
    }

    #[test]
    fn quality_override_decays_and_breaks_link() {
        let mut w = ideal_world(10);
        let a = w.add_node(
            "a",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        let b = w.add_node(
            "b",
            MobilityModel::stationary(Point::new(2.0, 0.0)),
            &bt(),
            Box::new(Probe::accepting()),
        );
        w.run_for(SimDuration::from_millis(1));
        w.with_agent::<Probe, _>(a, |_, ctx| {
            ctx.connect(b, RadioTech::Bluetooth);
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(1));
        let link = w.with_agent::<Probe, _>(a, |p, _| p.connected[0].1).unwrap();
        // Start at 240 and decay 10 units per second: below 230 after 1 s,
        // zero (and therefore broken) after 24 s.
        w.set_link_quality_override(link, 240.0, 10.0);
        assert_eq!(w.link_quality(link), Some(240));
        w.run_for(SimDuration::from_secs(2));
        let q = w.link_quality(link).unwrap();
        assert!(q < 230, "quality should have decayed below threshold, got {q}");
        w.run_for(SimDuration::from_secs(30));
        w.with_agent::<Probe, _>(a, |p, _| {
            assert_eq!(p.disconnects.len(), 1);
        })
        .unwrap();
        assert_eq!(w.link_quality(link), None);
    }

    #[test]
    fn gprs_dead_zone_blocks_connection() {
        let mut config = WorldConfig::ideal(11);
        config.gprs_dead_zones = vec![Rect::new(-5.0, -5.0, 5.0, 5.0)];
        let mut w = World::new(config);
        let inside = w.add_node(
            "inside",
            MobilityModel::stationary(Point::new(0.0, 0.0)),
            &[RadioTech::Gprs],
            Box::new(Probe::default()),
        );
        let outside = w.add_node(
            "outside",
            MobilityModel::stationary(Point::new(100.0, 0.0)),
            &[RadioTech::Gprs],
            Box::new(Probe::accepting()),
        );
        w.run_for(SimDuration::from_millis(1));
        assert!(!w.in_range(inside, outside, RadioTech::Gprs));
        w.with_agent::<Probe, _>(inside, |_, ctx| {
            ctx.connect(outside, RadioTech::Gprs);
        })
        .unwrap();
        w.run_for(SimDuration::from_secs(5));
        w.with_agent::<Probe, _>(inside, |p, _| {
            assert_eq!(p.failed[0].1, ConnectError::OutOfRange);
        })
        .unwrap();
        // Two nodes both outside the dead zone can talk regardless of distance.
        let far = w.add_node(
            "far",
            MobilityModel::stationary(Point::new(5000.0, 0.0)),
            &[RadioTech::Gprs],
            Box::new(Probe::accepting()),
        );
        w.run_for(SimDuration::from_millis(1));
        assert!(w.in_range(outside, far, RadioTech::Gprs));
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        fn run(seed: u64) -> (u64, u64, VecDeque<u64>) {
            let mut w = World::new(WorldConfig::with_seed(seed));
            let a = w.add_node(
                "a",
                MobilityModel::stationary(Point::new(0.0, 0.0)),
                &bt(),
                Box::new(Probe::default()),
            );
            let b = w.add_node(
                "b",
                MobilityModel::stationary(Point::new(6.0, 0.0)),
                &bt(),
                Box::new(Probe::accepting()),
            );
            w.run_for(SimDuration::from_millis(1));
            for _ in 0..10 {
                w.with_agent::<Probe, _>(a, |_, ctx| {
                    ctx.connect(b, RadioTech::Bluetooth);
                    ctx.start_inquiry(RadioTech::Bluetooth);
                })
                .unwrap();
                w.run_for(SimDuration::from_secs(20));
            }
            let qualities: VecDeque<u64> = w
                .with_agent::<Probe, _>(a, |p, _| {
                    p.inquiry_results
                        .iter()
                        .flat_map(|(_, hits)| hits.iter().map(|h| h.quality as u64))
                        .collect()
                })
                .unwrap();
            (
                w.metrics().global().connects_established,
                w.metrics().global().connect_failures,
                qualities,
            )
        }
        assert_eq!(run(1234), run(1234));
        // Different seeds should usually differ in at least the sampled qualities.
        let a = run(1);
        let b = run(2);
        assert!(a.2 != b.2 || a.0 != b.0 || a.1 != b.1);
    }

    #[test]
    fn world_accessors() {
        let mut w = ideal_world(12);
        let a = w.add_node(
            "alpha",
            MobilityModel::stationary(Point::new(1.0, 2.0)),
            &bt(),
            Box::new(Probe::default()),
        );
        assert_eq!(w.node_count(), 1);
        assert_eq!(w.node_name(a), Some("alpha"));
        assert_eq!(w.position_of(a), Some(Point::new(1.0, 2.0)));
        assert_eq!(w.node_ids().collect::<Vec<_>>(), vec![a]);
        assert!(w.links_of(a).is_empty());
        assert!(w.link_info(LinkId(0)).is_none());
        assert_eq!(w.now(), SimTime::ZERO);
        w.run_until(SimTime::from_secs(10));
        assert_eq!(w.now(), SimTime::from_secs(10));
        let idle_at = w.run_until_idle(SimTime::from_secs(100));
        assert!(idle_at <= SimTime::from_secs(100));
    }
}
