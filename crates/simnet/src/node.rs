//! Node identities and the agent trait.
//!
//! A *node* is a physical device in the simulated world (a phone, laptop or
//! PC). Its behaviour — in this repository, the PeerHood middleware stack —
//! is supplied as a [`NodeAgent`] implementation. The world delivers radio
//! events to the agent through the callbacks defined here and the agent acts
//! on the world through [`crate::world::NodeCtx`].

use std::any::Any;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::payload::Payload;
use crate::radio::RadioTech;
use crate::world::NodeCtx;

/// Identifier of a node in the world. Stable for the lifetime of the world.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct NodeId(u64);

impl NodeId {
    /// Builds an id from its raw value. Mostly useful in tests and for keys
    /// in serialised reports.
    pub const fn from_raw(raw: u64) -> Self {
        NodeId(raw)
    }

    /// Raw value of the id.
    pub const fn as_raw(self) -> u64 {
        self.0
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an in-progress connection attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct AttemptId(pub u64);

impl fmt::Display for AttemptId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "attempt{}", self.0)
    }
}

/// Identifier of an established point-to-point link.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct LinkId(pub u64);

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link{}", self.0)
    }
}

/// Opaque timer payload. The agent chooses the value when scheduling and
/// receives it back in [`NodeAgent::on_timer`]; the simulator never
/// interprets it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct TimerToken(pub u64);

/// One device found by a discovery inquiry.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InquiryHit {
    /// The discovered node.
    pub node: NodeId,
    /// Technology the node was found on.
    pub tech: RadioTech,
    /// Link quality sampled during the inquiry (0-255).
    pub quality: u8,
}

/// Why a connection attempt failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectError {
    /// A technology-level fault (the "normal Bluetooth connection fault"
    /// observed in §4.3 even with a strong signal).
    Fault,
    /// The peer moved out of radio range before setup completed.
    OutOfRange,
    /// The peer's agent declined the connection.
    Rejected,
    /// The target node does not exist, is switched off, or lacks the radio.
    Unreachable,
}

impl fmt::Display for ConnectError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConnectError::Fault => "technology-level connection fault",
            ConnectError::OutOfRange => "peer out of range",
            ConnectError::Rejected => "connection rejected by peer",
            ConnectError::Unreachable => "peer unreachable",
        };
        f.write_str(s)
    }
}

impl std::error::Error for ConnectError {}

/// Why an established link went down.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DisconnectReason {
    /// The endpoints drifted out of radio range (coverage loss, Fig. 1.1).
    OutOfRange,
    /// The remote endpoint closed the connection.
    PeerClosed,
    /// This endpoint closed the connection.
    LocalClosed,
    /// The remote node crashed or was switched off.
    PeerFailed,
}

impl fmt::Display for DisconnectReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DisconnectReason::OutOfRange => "out of range",
            DisconnectReason::PeerClosed => "peer closed",
            DisconnectReason::LocalClosed => "locally closed",
            DisconnectReason::PeerFailed => "peer failed",
        };
        f.write_str(s)
    }
}

/// Description of an inbound connection delivered to
/// [`NodeAgent::on_incoming_connection`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct IncomingConnection {
    /// The node that initiated the connection.
    pub from: NodeId,
    /// The technology the connection uses.
    pub tech: RadioTech,
    /// The link that will exist if the connection is accepted.
    pub link: LinkId,
}

/// Behaviour attached to a node. All callbacks run on the simulated event
/// loop; implementations must not block.
///
/// The `as_any`/`as_any_mut` methods let scenario drivers reach the concrete
/// agent type (e.g. the PeerHood node) through
/// [`crate::world::World::with_agent`].
pub trait NodeAgent: Any {
    /// Upcast for immutable downcasting.
    fn as_any(&self) -> &dyn Any;
    /// Upcast for mutable downcasting.
    fn as_any_mut(&mut self) -> &mut dyn Any;

    /// Called once when the node is added to the world.
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let _ = ctx;
    }

    /// Called when the node restarts after a crash (scheduled by a
    /// [`FaultPlan`](crate::faults::FaultPlan) or forced through
    /// [`World::restart_node`](crate::world::World::restart_node)). Timers,
    /// inquiries and connection attempts from before the crash are dead and
    /// will never call back; the agent is expected to come up with fresh
    /// state, like a rebooted device. The default implementation simply runs
    /// [`NodeAgent::on_start`] again — agents carrying per-session state
    /// should override this to reset it first.
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        self.on_start(ctx);
    }

    /// Called when a timer scheduled via [`NodeCtx::schedule`] fires.
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, timer: TimerToken) {
        let _ = (ctx, timer);
    }

    /// Called when a device-discovery inquiry started via
    /// [`NodeCtx::start_inquiry`] completes.
    fn on_inquiry_complete(&mut self, ctx: &mut NodeCtx<'_>, tech: RadioTech, hits: Vec<InquiryHit>) {
        let _ = (ctx, tech, hits);
    }

    /// Called when a remote node attempts to connect. Return `true` to
    /// accept; returning `false` fails the remote attempt with
    /// [`ConnectError::Rejected`].
    fn on_incoming_connection(&mut self, ctx: &mut NodeCtx<'_>, incoming: IncomingConnection) -> bool {
        let _ = (ctx, incoming);
        false
    }

    /// Called on the initiator when a connection attempt succeeds.
    fn on_connected(&mut self, ctx: &mut NodeCtx<'_>, attempt: AttemptId, link: LinkId, peer: NodeId, tech: RadioTech) {
        let _ = (ctx, attempt, link, peer, tech);
    }

    /// Called on the initiator when a connection attempt fails.
    fn on_connect_failed(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        attempt: AttemptId,
        peer: NodeId,
        tech: RadioTech,
        error: ConnectError,
    ) {
        let _ = (ctx, attempt, peer, tech, error);
    }

    /// Called when a payload sent by the peer arrives on an open link. The
    /// payload is a shared [`Payload`] clone — cheap to keep, copy-on-write
    /// to mutate.
    fn on_message(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, from: NodeId, payload: Payload) {
        let _ = (ctx, link, from, payload);
    }

    /// Called when an established link goes down for any reason.
    fn on_disconnected(&mut self, ctx: &mut NodeCtx<'_>, link: LinkId, peer: NodeId, reason: DisconnectReason) {
        let _ = (ctx, link, peer, reason);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_id_roundtrip_and_display() {
        let id = NodeId::from_raw(42);
        assert_eq!(id.as_raw(), 42);
        assert_eq!(id.to_string(), "n42");
        assert_eq!(LinkId(3).to_string(), "link3");
        assert_eq!(AttemptId(9).to_string(), "attempt9");
    }

    #[test]
    fn errors_display_something_useful() {
        assert!(ConnectError::Fault.to_string().contains("fault"));
        assert!(ConnectError::OutOfRange.to_string().contains("range"));
        assert!(DisconnectReason::PeerClosed.to_string().contains("peer"));
    }

    #[test]
    fn ids_order_by_raw_value() {
        assert!(NodeId::from_raw(1) < NodeId::from_raw(2));
        assert!(LinkId(5) > LinkId(4));
    }
}
