//! Shared, immutable message payloads.
//!
//! Every byte buffer travelling through the simulated world — an encoded
//! middleware frame, an application payload — is wrapped in a [`Payload`]:
//! an immutable shared buffer whose clones are reference-count bumps, not
//! copies. This is what lets a frame be encoded **once** and then fanned out
//! to many links (an advertisement reused for every neighbour, a bridge
//! relaying a frame without re-encoding it) and carried through the world's
//! in-flight queues without a per-hop `Vec` clone.
//!
//! Ownership rules:
//!
//! * a `Payload` is immutable — anyone holding a clone sees the same bytes
//!   forever; mutation (e.g. a corruption burst flipping bits) goes through
//!   [`Payload::to_vec`] and rebuilds a fresh buffer (copy-on-write), so
//!   other holders of the original are never affected,
//! * clones are `O(1)`; the backing allocation is freed when the last clone
//!   drops,
//! * `Payload` is deliberately **not** `Send`/`Sync`: the sequential world
//!   is single-threaded and the cheaper non-atomic `Rc` counter is the
//!   point. Buffers that must cross a shard (thread) boundary use
//!   [`SharedPayload`], the `Arc<[u8]>` sibling; converting a
//!   `SharedPayload` into a `Payload` is `O(1)` (the `Payload` then carries
//!   the `Arc` internally), while `Payload::to_shared` copies unless the
//!   payload was already `Arc`-backed.

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;
use std::sync::Arc;

/// The backing allocation of a [`Payload`]: node-local buffers stay on the
/// cheap non-atomic `Rc`; buffers that arrived from another shard keep
/// their `Arc` so the conversion is free in both directions.
#[derive(Clone)]
enum Repr {
    Local(Rc<[u8]>),
    Shared(Arc<[u8]>),
}

impl Repr {
    fn as_slice(&self) -> &[u8] {
        match self {
            Repr::Local(rc) => rc,
            Repr::Shared(arc) => arc,
        }
    }
}

/// An immutable, cheaply clonable byte buffer (see the module docs).
#[derive(Clone)]
pub struct Payload {
    bytes: Repr,
}

impl Payload {
    /// An empty payload.
    pub fn new() -> Self {
        Payload::default()
    }

    /// Builds a payload by copying the given bytes (one copy, after which
    /// every clone is free).
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Payload {
            bytes: Repr::Local(Rc::from(bytes)),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.bytes.as_slice().len()
    }

    /// True when the payload holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.as_slice().is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        self.bytes.as_slice()
    }

    /// Copies the bytes into an owned `Vec` — the copy-on-write escape
    /// hatch: mutate the vector, then convert it back into a fresh
    /// `Payload`. Other clones of `self` keep the original bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.bytes.as_slice().to_vec()
    }

    /// Converts into a [`SharedPayload`] that can cross thread (shard)
    /// boundaries. `O(1)` when this payload already came from a
    /// `SharedPayload`; otherwise the bytes are copied once into an `Arc`.
    pub fn to_shared(&self) -> SharedPayload {
        match &self.bytes {
            Repr::Local(rc) => SharedPayload {
                bytes: Arc::from(&rc[..]),
            },
            Repr::Shared(arc) => SharedPayload { bytes: Arc::clone(arc) },
        }
    }

    /// Number of live clones sharing this allocation (diagnostic for tests).
    pub fn ref_count(&self) -> usize {
        match &self.bytes {
            Repr::Local(rc) => Rc::strong_count(rc),
            Repr::Shared(arc) => Arc::strong_count(arc),
        }
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload {
            bytes: Repr::Local(Rc::from(&[][..])),
        }
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        self.bytes.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        self.bytes.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload {
            bytes: Repr::Local(Rc::from(v)),
        }
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Self {
        Payload::copy_from_slice(v)
    }
}

impl From<SharedPayload> for Payload {
    fn from(shared: SharedPayload) -> Self {
        Payload {
            bytes: Repr::Shared(shared.bytes),
        }
    }
}

impl From<&SharedPayload> for Payload {
    fn from(shared: &SharedPayload) -> Self {
        Payload {
            bytes: Repr::Shared(Arc::clone(&shared.bytes)),
        }
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Payload {}

impl std::hash::Hash for Payload {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.as_slice().hash(state);
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.len())
    }
}

/// The `Send + Sync` sibling of [`Payload`]: an immutable `Arc<[u8]>` buffer
/// for bytes that cross shard (thread) boundaries in the sharded world.
///
/// Same sharing semantics as `Payload` — clones are reference-count bumps,
/// the buffer is immutable, copy-on-write goes through [`SharedPayload::to_vec`].
/// Converting to a `Payload` is always `O(1)`; see [`Payload::to_shared`]
/// for the other direction.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct SharedPayload {
    bytes: Arc<[u8]>,
}

impl SharedPayload {
    /// An empty payload.
    pub fn new() -> Self {
        SharedPayload::default()
    }

    /// Builds a shared payload by copying the given bytes.
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        SharedPayload {
            bytes: Arc::from(bytes),
        }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Copies the bytes into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.bytes.to_vec()
    }

    /// Number of live clones sharing this allocation (diagnostic for tests).
    pub fn ref_count(&self) -> usize {
        Arc::strong_count(&self.bytes)
    }
}

impl Default for SharedPayload {
    fn default() -> Self {
        SharedPayload {
            bytes: Arc::from(&[][..]),
        }
    }
}

impl Deref for SharedPayload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl AsRef<[u8]> for SharedPayload {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl From<Vec<u8>> for SharedPayload {
    fn from(v: Vec<u8>) -> Self {
        SharedPayload { bytes: Arc::from(v) }
    }
}

impl From<&[u8]> for SharedPayload {
    fn from(v: &[u8]) -> Self {
        SharedPayload::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for SharedPayload {
    fn from(v: &[u8; N]) -> Self {
        SharedPayload::copy_from_slice(v)
    }
}

impl PartialEq<[u8]> for SharedPayload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for SharedPayload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for SharedPayload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SharedPayload({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let p = Payload::from(vec![1u8, 2, 3]);
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(p.ref_count(), 2);
        assert_eq!(q.as_slice(), &[1, 2, 3]);
        drop(p);
        assert_eq!(q.ref_count(), 1);
    }

    #[test]
    fn copy_on_write_leaves_other_clones_untouched() {
        let original = Payload::from(vec![0u8; 8]);
        let shared = original.clone();
        let mut bytes = shared.to_vec();
        bytes[0] = 0xFF;
        let mutated = Payload::from(bytes);
        assert_eq!(original.as_slice()[0], 0, "the original must keep its bytes");
        assert_eq!(mutated.as_slice()[0], 0xFF);
        assert_eq!(original.ref_count(), 2, "original + shared");
        assert_eq!(mutated.ref_count(), 1);
    }

    #[test]
    fn conversions_and_views() {
        let p: Payload = b"hello".into();
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(&p[..2], b"he");
        assert_eq!(p, b"hello".to_vec());
        assert!(Payload::new().is_empty());
        assert_eq!(format!("{p:?}"), "Payload(5 bytes)");
        let from_slice = Payload::from(&b"xy"[..]);
        assert_eq!(from_slice.to_vec(), vec![b'x', b'y']);
    }

    #[test]
    fn shared_payload_crosses_threads_and_converts_for_free() {
        let shared = SharedPayload::from(vec![7u8; 32]);
        let clone = shared.clone();
        let joined = std::thread::spawn(move || {
            assert_eq!(clone.len(), 32);
            clone
        })
        .join()
        .unwrap();
        // Arc-backed Payload: the conversion must not copy — both sides see
        // the same allocation, so the strong count covers all of them.
        let local: Payload = joined.into();
        assert_eq!(local.ref_count(), 2, "shared + local view of one Arc");
        assert_eq!(local.as_slice(), &[7u8; 32][..]);
        // Round-trip back out of an Arc-backed payload is free as well.
        let back = local.to_shared();
        assert_eq!(back.ref_count(), 3);
        // An Rc-backed payload has to copy to become shareable.
        let rc_backed = Payload::from(vec![1u8, 2]);
        let copied = rc_backed.to_shared();
        assert_eq!(copied.ref_count(), 1);
        assert_eq!(copied.as_slice(), &[1, 2]);
        assert_eq!(format!("{copied:?}"), "SharedPayload(2 bytes)");
    }
}
