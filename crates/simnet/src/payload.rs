//! Shared, immutable message payloads.
//!
//! Every byte buffer travelling through the simulated world — an encoded
//! middleware frame, an application payload — is wrapped in a [`Payload`]:
//! an immutable `Rc<[u8]>`-backed buffer whose clones are reference-count
//! bumps, not copies. This is what lets a frame be encoded **once** and then
//! fanned out to many links (an advertisement reused for every neighbour, a
//! bridge relaying a frame without re-encoding it) and carried through the
//! world's in-flight queues without a per-hop `Vec` clone.
//!
//! Ownership rules:
//!
//! * a `Payload` is immutable — anyone holding a clone sees the same bytes
//!   forever; mutation (e.g. a corruption burst flipping bits) goes through
//!   [`Payload::to_vec`] and rebuilds a fresh buffer (copy-on-write), so
//!   other holders of the original are never affected,
//! * clones are `O(1)`; the backing allocation is freed when the last clone
//!   drops,
//! * `Payload` is deliberately **not** `Send`/`Sync` (`Rc`, not `Arc`): the
//!   simulation is single-threaded and the cheaper non-atomic counter is the
//!   point.

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;

/// An immutable, cheaply clonable byte buffer (see the module docs).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Payload {
    bytes: Rc<[u8]>,
}

impl Payload {
    /// An empty payload.
    pub fn new() -> Self {
        Payload::default()
    }

    /// Builds a payload by copying the given bytes (one copy, after which
    /// every clone is free).
    pub fn copy_from_slice(bytes: &[u8]) -> Self {
        Payload { bytes: Rc::from(bytes) }
    }

    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.bytes.len()
    }

    /// True when the payload holds no bytes.
    pub fn is_empty(&self) -> bool {
        self.bytes.is_empty()
    }

    /// The bytes as a slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes
    }

    /// Copies the bytes into an owned `Vec` — the copy-on-write escape
    /// hatch: mutate the vector, then convert it back into a fresh
    /// `Payload`. Other clones of `self` keep the original bytes.
    pub fn to_vec(&self) -> Vec<u8> {
        self.bytes.to_vec()
    }

    /// Number of live clones sharing this allocation (diagnostic for tests).
    pub fn ref_count(&self) -> usize {
        Rc::strong_count(&self.bytes)
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload {
            bytes: Rc::from(&[][..]),
        }
    }
}

impl Deref for Payload {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.bytes
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.bytes
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Self {
        Payload { bytes: Rc::from(v) }
    }
}

impl From<&[u8]> for Payload {
    fn from(v: &[u8]) -> Self {
        Payload::copy_from_slice(v)
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(v: &[u8; N]) -> Self {
        Payload::copy_from_slice(v)
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Payload({} bytes)", self.bytes.len())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_allocation() {
        let p = Payload::from(vec![1u8, 2, 3]);
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(p.ref_count(), 2);
        assert_eq!(q.as_slice(), &[1, 2, 3]);
        drop(p);
        assert_eq!(q.ref_count(), 1);
    }

    #[test]
    fn copy_on_write_leaves_other_clones_untouched() {
        let original = Payload::from(vec![0u8; 8]);
        let shared = original.clone();
        let mut bytes = shared.to_vec();
        bytes[0] = 0xFF;
        let mutated = Payload::from(bytes);
        assert_eq!(original.as_slice()[0], 0, "the original must keep its bytes");
        assert_eq!(mutated.as_slice()[0], 0xFF);
        assert_eq!(original.ref_count(), 2, "original + shared");
        assert_eq!(mutated.ref_count(), 1);
    }

    #[test]
    fn conversions_and_views() {
        let p: Payload = b"hello".into();
        assert_eq!(p.len(), 5);
        assert!(!p.is_empty());
        assert_eq!(&p[..2], b"he");
        assert_eq!(p, b"hello".to_vec());
        assert!(Payload::new().is_empty());
        assert_eq!(format!("{p:?}"), "Payload(5 bytes)");
        let from_slice = Payload::from(&b"xy"[..]);
        assert_eq!(from_slice.to_vec(), vec![b'x', b'y']);
    }
}
