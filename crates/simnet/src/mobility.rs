//! Device mobility models.
//!
//! The thesis classifies devices as *static*, *hybrid* or *dynamic*
//! (§3.4.3); the dynamic ones move. This module provides the movement
//! patterns used by the scenarios: fixed position, straight-line walks,
//! waypoint paths (e.g. office → corridor, the walk used in §5.2.1), and
//! random-waypoint roaming for the larger random-field experiments.
//!
//! A [`MobilityModel`] is compiled into a [`MotionPlan`] — a deterministic
//! piecewise-linear trajectory — when the node is added to the world, so
//! position queries at arbitrary times are pure lookups and the whole run
//! stays reproducible.

use serde::{Deserialize, Serialize};

use crate::geometry::{Point, Rect};
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// Description of how a node moves, as configured by a scenario.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum MobilityModel {
    /// The node never moves (paper's "static" terminals: PCs, servers).
    Stationary {
        /// Fixed position.
        position: Point,
    },
    /// The node walks from `from` to `to` at `speed_mps` starting at
    /// `start_after` and then stays at `to`. This is the office-to-corridor
    /// walk of §5.2.1.
    Linear {
        /// Starting position.
        from: Point,
        /// Destination position.
        to: Point,
        /// Walking speed in metres per second.
        speed_mps: f64,
        /// Time before the walk begins (the node waits at `from`).
        start_after: SimDuration,
    },
    /// The node visits a list of waypoints in order at constant speed and
    /// stops at the last one. Used for the corridor and return-path
    /// (Fig. 5.7) scenarios.
    Waypoints {
        /// Ordered list of positions to visit; the first is the start.
        points: Vec<Point>,
        /// Walking speed in metres per second.
        speed_mps: f64,
        /// Time before movement begins.
        start_after: SimDuration,
    },
    /// Classic random-waypoint roaming inside an area: pick a random point,
    /// walk to it at a random speed, pause, repeat. Used by the random-field
    /// discovery experiments (E1/E2).
    RandomWaypoint {
        /// Area the node roams within.
        area: Rect,
        /// Initial position (clamped to the area).
        start: Point,
        /// Minimum speed in metres per second.
        min_speed_mps: f64,
        /// Maximum speed in metres per second.
        max_speed_mps: f64,
        /// Pause duration at each waypoint.
        pause: SimDuration,
    },
}

impl MobilityModel {
    /// Convenience constructor for a stationary node.
    pub fn stationary(position: Point) -> Self {
        MobilityModel::Stationary { position }
    }

    /// Convenience constructor for an immediate straight-line walk.
    pub fn walk(from: Point, to: Point, speed_mps: f64) -> Self {
        MobilityModel::Linear {
            from,
            to,
            speed_mps,
            start_after: SimDuration::ZERO,
        }
    }

    /// Convenience constructor for a delayed straight-line walk.
    pub fn walk_after(from: Point, to: Point, speed_mps: f64, start_after: SimDuration) -> Self {
        MobilityModel::Linear {
            from,
            to,
            speed_mps,
            start_after,
        }
    }

    /// The position the node occupies at time zero.
    pub fn initial_position(&self) -> Point {
        match self {
            MobilityModel::Stationary { position } => *position,
            MobilityModel::Linear { from, .. } => *from,
            MobilityModel::Waypoints { points, .. } => points.first().copied().unwrap_or(Point::ORIGIN),
            MobilityModel::RandomWaypoint { area, start, .. } => area.clamp(*start),
        }
    }

    /// True if the model can ever move the node.
    pub fn is_mobile(&self) -> bool {
        !matches!(self, MobilityModel::Stationary { .. })
    }

    /// Compiles the model into a deterministic [`MotionPlan`] covering the
    /// time span `[0, horizon]`. Random-waypoint legs are drawn from `rng`.
    pub fn compile(&self, horizon: SimTime, rng: &mut SimRng) -> MotionPlan {
        match self {
            MobilityModel::Stationary { position } => MotionPlan::fixed(*position),
            MobilityModel::Linear {
                from,
                to,
                speed_mps,
                start_after,
            } => {
                let mut plan = MotionPlan::starting_at(*from);
                plan.hold_until(SimTime::ZERO + *start_after);
                plan.move_to(*to, *speed_mps);
                plan
            }
            MobilityModel::Waypoints {
                points,
                speed_mps,
                start_after,
            } => {
                let start = points.first().copied().unwrap_or(Point::ORIGIN);
                let mut plan = MotionPlan::starting_at(start);
                plan.hold_until(SimTime::ZERO + *start_after);
                for p in points.iter().skip(1) {
                    plan.move_to(*p, *speed_mps);
                }
                plan
            }
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps,
                max_speed_mps,
                pause,
            } => {
                let mut plan = MotionPlan::starting_at(area.clamp(*start));
                while plan.end_time() < horizon {
                    let target = Point::new(
                        rng.uniform_f64(area.min_x, area.max_x),
                        rng.uniform_f64(area.min_y, area.max_y),
                    );
                    let speed = rng.uniform_f64(*min_speed_mps, *max_speed_mps).max(0.01);
                    plan.move_to(target, speed);
                    if !pause.is_zero() {
                        plan.hold_for(*pause);
                    }
                }
                plan
            }
        }
    }
}

/// One linear segment of a compiled trajectory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
struct Segment {
    start_time: SimTime,
    end_time: SimTime,
    from: Point,
    to: Point,
}

impl Segment {
    fn position_at(&self, t: SimTime) -> Point {
        if t <= self.start_time {
            return self.from;
        }
        if t >= self.end_time {
            return self.to;
        }
        let total = (self.end_time - self.start_time).as_secs_f64();
        if total <= 0.0 {
            return self.to;
        }
        let elapsed = (t - self.start_time).as_secs_f64();
        self.from.lerp(self.to, elapsed / total)
    }
}

/// A deterministic piecewise-linear trajectory: the node's position can be
/// evaluated at any instant with a binary search over segments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MotionPlan {
    segments: Vec<Segment>,
    final_position: Point,
}

impl MotionPlan {
    /// A plan that keeps the node at `position` forever.
    pub fn fixed(position: Point) -> Self {
        MotionPlan {
            segments: Vec::new(),
            final_position: position,
        }
    }

    /// Starts building a plan with the node at `start` at time zero.
    pub fn starting_at(start: Point) -> Self {
        MotionPlan {
            segments: Vec::new(),
            final_position: start,
        }
    }

    /// Time at which the last scheduled movement finishes.
    pub fn end_time(&self) -> SimTime {
        self.segments.last().map(|s| s.end_time).unwrap_or(SimTime::ZERO)
    }

    /// Current end position of the plan (where appended motion starts from).
    pub fn end_position(&self) -> Point {
        self.final_position
    }

    /// Appends a stay-in-place segment until the given absolute time. Does
    /// nothing if `until` is not after the current end of the plan.
    pub fn hold_until(&mut self, until: SimTime) {
        let start = self.end_time();
        if until <= start {
            return;
        }
        let pos = self.final_position;
        self.segments.push(Segment {
            start_time: start,
            end_time: until,
            from: pos,
            to: pos,
        });
    }

    /// Appends a stay-in-place segment of the given length.
    pub fn hold_for(&mut self, duration: SimDuration) {
        let until = self.end_time() + duration;
        self.hold_until(until);
    }

    /// Appends a constant-speed movement from the current end position to
    /// `target`.
    ///
    /// # Panics
    ///
    /// Panics if `speed_mps` is not strictly positive.
    pub fn move_to(&mut self, target: Point, speed_mps: f64) {
        assert!(speed_mps > 0.0, "speed must be positive");
        let from = self.final_position;
        let start = self.end_time();
        let distance = from.distance(target);
        let travel = SimDuration::from_secs_f64(distance / speed_mps);
        self.segments.push(Segment {
            start_time: start,
            end_time: start + travel,
            from,
            to: target,
        });
        self.final_position = target;
    }

    /// Position of the node at time `t`.
    pub fn position_at(&self, t: SimTime) -> Point {
        if self.segments.is_empty() {
            return self.final_position;
        }
        // Binary search for the segment containing t.
        let idx = self.segments.partition_point(|s| s.end_time < t);
        match self.segments.get(idx) {
            Some(seg) => seg.position_at(t),
            None => self.final_position,
        }
    }

    /// True if the node is still scheduled to move after time `t`.
    pub fn moving_after(&self, t: SimTime) -> bool {
        self.segments.iter().any(|s| s.end_time > t && s.from != s.to)
    }

    /// Earliest time at or after `from` at which the trajectory leaves the
    /// closed rectangle `rect`, or `None` if the node never does.
    ///
    /// The world's spatial index uses this to decide how long a node's
    /// grid-cell residency stays valid, so the index only touches a node
    /// when it actually crosses a cell boundary instead of on every query.
    pub fn departure_time(&self, rect: Rect, from: SimTime) -> Option<SimTime> {
        if !rect.contains(self.position_at(from)) {
            return Some(from);
        }
        let start_idx = self.segments.partition_point(|s| s.end_time < from);
        for seg in &self.segments[start_idx..] {
            // Both endpoints of a linear piece inside a convex region means
            // the whole piece is inside; only pieces ending outside can cross.
            if rect.contains(seg.to) {
                continue;
            }
            let t0 = seg.start_time.max(from);
            let p0 = seg.position_at(t0);
            let u = exit_fraction(p0, seg.to, rect);
            let span = (seg.end_time - t0).as_secs_f64();
            return Some(t0 + SimDuration::from_secs_f64(span * u));
        }
        None
    }
}

/// Fraction `u` in `[0, 1]` at which the segment `p0 -> p1` (with `p0`
/// inside the closed rectangle and `p1` outside) first touches the boundary.
fn exit_fraction(p0: Point, p1: Point, rect: Rect) -> f64 {
    let mut u = 1.0f64;
    let dx = p1.x - p0.x;
    let dy = p1.y - p0.y;
    if p1.x > rect.max_x {
        u = u.min((rect.max_x - p0.x) / dx);
    }
    if p1.x < rect.min_x {
        u = u.min((rect.min_x - p0.x) / dx);
    }
    if p1.y > rect.max_y {
        u = u.min((rect.max_y - p0.y) / dy);
    }
    if p1.y < rect.min_y {
        u = u.min((rect.min_y - p0.y) / dy);
    }
    u.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> SimRng {
        SimRng::new(1234)
    }

    #[test]
    fn stationary_never_moves() {
        let m = MobilityModel::stationary(Point::new(3.0, 4.0));
        let plan = m.compile(SimTime::from_secs(1000), &mut rng());
        assert_eq!(plan.position_at(SimTime::ZERO), Point::new(3.0, 4.0));
        assert_eq!(plan.position_at(SimTime::from_secs(999)), Point::new(3.0, 4.0));
        assert!(!m.is_mobile());
        assert!(!plan.moving_after(SimTime::ZERO));
    }

    #[test]
    fn linear_walk_positions() {
        // Walk 10 m at 1 m/s starting immediately.
        let m = MobilityModel::walk(Point::new(0.0, 0.0), Point::new(10.0, 0.0), 1.0);
        let plan = m.compile(SimTime::from_secs(100), &mut rng());
        assert_eq!(plan.position_at(SimTime::ZERO), Point::new(0.0, 0.0));
        let mid = plan.position_at(SimTime::from_secs(5));
        assert!((mid.x - 5.0).abs() < 1e-9);
        assert_eq!(plan.position_at(SimTime::from_secs(10)), Point::new(10.0, 0.0));
        assert_eq!(plan.position_at(SimTime::from_secs(50)), Point::new(10.0, 0.0));
    }

    #[test]
    fn delayed_walk_waits_first() {
        let m = MobilityModel::walk_after(
            Point::new(0.0, 0.0),
            Point::new(10.0, 0.0),
            2.0,
            SimDuration::from_secs(20),
        );
        let plan = m.compile(SimTime::from_secs(100), &mut rng());
        assert_eq!(plan.position_at(SimTime::from_secs(19)), Point::new(0.0, 0.0));
        let p = plan.position_at(SimTime::from_secs(22));
        assert!((p.x - 4.0).abs() < 1e-9);
        assert_eq!(plan.position_at(SimTime::from_secs(30)), Point::new(10.0, 0.0));
    }

    #[test]
    fn waypoint_path_visits_in_order() {
        let m = MobilityModel::Waypoints {
            points: vec![Point::new(0.0, 0.0), Point::new(10.0, 0.0), Point::new(10.0, 10.0)],
            speed_mps: 1.0,
            start_after: SimDuration::ZERO,
        };
        let plan = m.compile(SimTime::from_secs(100), &mut rng());
        assert_eq!(plan.position_at(SimTime::from_secs(10)), Point::new(10.0, 0.0));
        let p = plan.position_at(SimTime::from_secs(15));
        assert!((p.y - 5.0).abs() < 1e-9);
        assert_eq!(plan.position_at(SimTime::from_secs(20)), Point::new(10.0, 10.0));
        assert!(plan.moving_after(SimTime::from_secs(5)));
        assert!(!plan.moving_after(SimTime::from_secs(20)));
    }

    #[test]
    fn random_waypoint_stays_in_area_and_is_deterministic() {
        let area = Rect::square(100.0);
        let m = MobilityModel::RandomWaypoint {
            area,
            start: Point::new(50.0, 50.0),
            min_speed_mps: 0.5,
            max_speed_mps: 2.0,
            pause: SimDuration::from_secs(5),
        };
        let plan_a = m.compile(SimTime::from_secs(600), &mut SimRng::new(9));
        let plan_b = m.compile(SimTime::from_secs(600), &mut SimRng::new(9));
        assert_eq!(plan_a, plan_b, "same seed must give the same trajectory");
        assert!(plan_a.end_time() >= SimTime::from_secs(600));
        for s in 0..600 {
            let p = plan_a.position_at(SimTime::from_secs(s));
            assert!(area.contains(p), "left area at t={s}: {p:?}");
        }
    }

    #[test]
    fn initial_positions() {
        assert_eq!(
            MobilityModel::stationary(Point::new(1.0, 2.0)).initial_position(),
            Point::new(1.0, 2.0)
        );
        let wp = MobilityModel::Waypoints {
            points: vec![Point::new(7.0, 7.0)],
            speed_mps: 1.0,
            start_after: SimDuration::ZERO,
        };
        assert_eq!(wp.initial_position(), Point::new(7.0, 7.0));
    }

    #[test]
    #[should_panic]
    fn zero_speed_rejected() {
        let mut plan = MotionPlan::starting_at(Point::ORIGIN);
        plan.move_to(Point::new(1.0, 0.0), 0.0);
    }

    #[test]
    fn departure_time_stationary_inside_never_leaves() {
        let plan = MotionPlan::fixed(Point::new(5.0, 5.0));
        let rect = Rect::square(10.0);
        assert_eq!(plan.departure_time(rect, SimTime::ZERO), None);
    }

    #[test]
    fn departure_time_outside_is_immediate() {
        let plan = MotionPlan::fixed(Point::new(50.0, 5.0));
        let rect = Rect::square(10.0);
        assert_eq!(
            plan.departure_time(rect, SimTime::from_secs(3)),
            Some(SimTime::from_secs(3))
        );
    }

    #[test]
    fn departure_time_linear_walk_crosses_boundary() {
        // Walk from (5,5) to (25,5) at 1 m/s; leaves the 10x10 square when
        // x = 10, i.e. after 5 seconds.
        let m = MobilityModel::walk(Point::new(5.0, 5.0), Point::new(25.0, 5.0), 1.0);
        let plan = m.compile(SimTime::from_secs(100), &mut rng());
        let rect = Rect::square(10.0);
        let t = plan.departure_time(rect, SimTime::ZERO).unwrap();
        assert!((t.as_secs_f64() - 5.0).abs() < 1e-6, "left at {t:?}");
        // Asking from a later time inside the rect still finds the crossing.
        let t2 = plan.departure_time(rect, SimTime::from_secs(2)).unwrap();
        assert!((t2.as_secs_f64() - 5.0).abs() < 1e-6);
        // After the crossing the position is outside: departure is immediate.
        assert_eq!(
            plan.departure_time(rect, SimTime::from_secs(7)),
            Some(SimTime::from_secs(7))
        );
    }

    #[test]
    fn departure_time_skips_hold_segments() {
        let mut plan = MotionPlan::starting_at(Point::new(5.0, 5.0));
        plan.hold_until(SimTime::from_secs(20));
        plan.move_to(Point::new(5.0, 35.0), 1.0); // leaves y=10 at t=25
        let rect = Rect::square(10.0);
        let t = plan.departure_time(rect, SimTime::ZERO).unwrap();
        assert!((t.as_secs_f64() - 25.0).abs() < 1e-6, "left at {t:?}");
    }

    #[test]
    fn departure_time_never_before_from() {
        let m = MobilityModel::walk(Point::new(0.0, 0.0), Point::new(100.0, 0.0), 2.0);
        let plan = m.compile(SimTime::from_secs(100), &mut rng());
        let rect = Rect::new(0.0, 0.0, 30.0, 30.0);
        for s in 0..40 {
            let from = SimTime::from_secs(s);
            if let Some(t) = plan.departure_time(rect, from) {
                assert!(t >= from);
            }
        }
    }
}
