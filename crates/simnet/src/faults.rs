//! Deterministic fault and churn injection.
//!
//! The thesis evaluates PeerHood against one kind of adversity — geometry: a
//! device walks out of radio range. Real deployments also die of crashed
//! daemons, radios toggled off and lossy links. This module adds those
//! failure modes to the simulated world without giving up determinism:
//!
//! * a [`FaultPlan`] is a per-node schedule of **crashes & restarts** (the
//!   node's slot is freed of links, it is evicted from the spatial index
//!   while down, and its agent is reborn with fresh state through
//!   [`NodeAgent::on_restart`](crate::node::NodeAgent::on_restart)),
//!   **radio outages** (per-technology airplane mode: the node answers no
//!   inquiries and its links on that technology drop) and **loss bursts**
//!   (windows during which payloads touching the node are dropped or
//!   bit-flipped with seeded randomness),
//! * plans are either scripted explicitly (the builder methods) or derived
//!   from a seed with [`FaultPlan::churn`], so every run of a churn scenario
//!   reproduces byte-for-byte,
//! * the world records a typed [`LifecycleEvent`] stream
//!   ([`NodeDown`](LifecycleKind::NodeDown) / [`NodeUp`](LifecycleKind::NodeUp) /
//!   [`RadioDown`](LifecycleKind::RadioDown) / [`RadioUp`](LifecycleKind::RadioUp))
//!   and aggregate [`FaultStats`] for experiment reports.
//!
//! A world with **no plans installed pays nothing**: the hooks in the event
//! loop are guarded by emptiness checks, no randomness is drawn, and event
//! traces are byte-identical to a fault-free build (asserted by the
//! `faults_overhead` bench and the scale-determinism tests).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::node::NodeId;
use crate::radio::RadioTech;
use crate::rng::SimRng;
use crate::time::{SimDuration, SimTime};

/// One scheduled state transition of a node or one of its radios.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultAction {
    /// The node crashes: links break, the slot leaves the spatial index and
    /// the agent stops receiving events.
    NodeDown,
    /// The node restarts: it re-enters the spatial index and its agent is
    /// reborn through `NodeAgent::on_restart`.
    NodeUp,
    /// The given radio goes dark (airplane mode): links on it drop and the
    /// node no longer answers inquiries on it.
    RadioDown(RadioTech),
    /// The given radio comes back.
    RadioUp(RadioTech),
}

/// A window during which payloads travelling to or from the planned node are
/// subject to seeded loss and corruption.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossBurst {
    /// Start of the window (inclusive).
    pub from: SimTime,
    /// End of the window (exclusive).
    pub until: SimTime,
    /// Probability that an affected payload is silently dropped.
    pub drop_prob: f64,
    /// Probability that an affected (non-dropped) payload has random bits
    /// flipped before delivery — exercising the wire codec's error paths.
    pub corrupt_prob: f64,
    /// When set, the burst targets only the link *pair* between the planned
    /// node and this peer (one flaky radio path, not the whole node); `None`
    /// hits every link of the planned node.
    pub peer: Option<NodeId>,
}

impl LossBurst {
    /// True if `now` falls inside the window.
    pub fn active_at(&self, now: SimTime) -> bool {
        self.from <= now && now < self.until
    }

    /// True if the burst applies to a payload whose opposite endpoint is
    /// `other` (always true for node-wide bursts).
    pub fn applies_to_peer(&self, other: NodeId) -> bool {
        self.peer.map(|p| p == other).unwrap_or(true)
    }
}

/// A periodic up/down square wave on the link pair between the planned node
/// and one peer: a link that works for `duty` of every `period` and is dead
/// for the rest — the classic flapping neighbour that keeps tearing down and
/// re-admitting sessions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FlappingLink {
    /// The other endpoint of the flapping pair.
    pub peer: NodeId,
    /// Length of one full up+down cycle.
    pub period: SimDuration,
    /// Fraction of each period the link is *up* (clamped to `[0, 1]`).
    pub duty: f64,
}

/// A deterministic per-node fault schedule.
///
/// Built fluently by scenarios, or derived from a seed with
/// [`FaultPlan::churn`]; installed with
/// [`World::install_fault_plan`](crate::world::World::install_fault_plan).
///
/// ```
/// use simnet::faults::FaultPlan;
/// use simnet::time::{SimDuration, SimTime};
/// use simnet::radio::RadioTech;
///
/// let plan = FaultPlan::new()
///     .crash_for(SimTime::from_secs(60), SimDuration::from_secs(10))
///     .radio_outage(RadioTech::Bluetooth, SimTime::from_secs(120), SimDuration::from_secs(5))
///     .loss_burst(SimTime::from_secs(30), SimTime::from_secs(40), 0.2, 0.1);
/// assert_eq!(plan.actions().len(), 4);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct FaultPlan {
    actions: Vec<(SimTime, FaultAction)>,
    bursts: Vec<LossBurst>,
    flaps: Vec<FlappingLink>,
}

impl FaultPlan {
    /// An empty plan (installing it is a no-op).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// True if the plan schedules nothing at all.
    pub fn is_empty(&self) -> bool {
        self.actions.is_empty() && self.bursts.is_empty() && self.flaps.is_empty()
    }

    /// The scheduled actions, in insertion order.
    pub fn actions(&self) -> &[(SimTime, FaultAction)] {
        &self.actions
    }

    /// The loss/corruption windows.
    pub fn bursts(&self) -> &[LossBurst] {
        &self.bursts
    }

    /// The flapping link pairs.
    pub fn flaps(&self) -> &[FlappingLink] {
        &self.flaps
    }

    /// Schedules a permanent crash at `at`.
    pub fn crash_at(mut self, at: SimTime) -> Self {
        self.actions.push((at, FaultAction::NodeDown));
        self
    }

    /// Schedules a crash at `at` followed by a restart `downtime` later.
    pub fn crash_for(mut self, at: SimTime, downtime: SimDuration) -> Self {
        self.actions.push((at, FaultAction::NodeDown));
        self.actions.push((at + downtime, FaultAction::NodeUp));
        self
    }

    /// Schedules a restart at `at` (pairs with [`FaultPlan::crash_at`]).
    pub fn restart_at(mut self, at: SimTime) -> Self {
        self.actions.push((at, FaultAction::NodeUp));
        self
    }

    /// Schedules an airplane-mode window on `tech` starting at `at`.
    pub fn radio_outage(mut self, tech: RadioTech, at: SimTime, duration: SimDuration) -> Self {
        self.actions.push((at, FaultAction::RadioDown(tech)));
        self.actions.push((at + duration, FaultAction::RadioUp(tech)));
        self
    }

    /// Adds a loss/corruption window. Probabilities are clamped to `[0, 1]`.
    pub fn loss_burst(mut self, from: SimTime, until: SimTime, drop_prob: f64, corrupt_prob: f64) -> Self {
        self.bursts.push(LossBurst {
            from,
            until,
            drop_prob: drop_prob.clamp(0.0, 1.0),
            corrupt_prob: corrupt_prob.clamp(0.0, 1.0),
            peer: None,
        });
        self
    }

    /// Adds a loss/corruption window that targets only the link pair between
    /// the planned node and `peer` — one flaky radio path — leaving the
    /// node's other links clean. Probabilities are clamped to `[0, 1]`.
    pub fn link_burst(
        mut self,
        peer: NodeId,
        from: SimTime,
        until: SimTime,
        drop_prob: f64,
        corrupt_prob: f64,
    ) -> Self {
        self.bursts.push(LossBurst {
            from,
            until,
            drop_prob: drop_prob.clamp(0.0, 1.0),
            corrupt_prob: corrupt_prob.clamp(0.0, 1.0),
            peer: Some(peer),
        });
        self
    }

    /// Declares the link pair between the planned node and `peer` as
    /// flapping: up for `duty` of every `period`, dead for the rest. While
    /// the pair is down, connection attempts between the two nodes fail,
    /// payloads in flight between them are lost and open links break at the
    /// next link check — all with
    /// [`ConnectError::OutOfRange`](crate::node::ConnectError::OutOfRange) /
    /// [`DisconnectReason::OutOfRange`](crate::node::DisconnectReason::OutOfRange)
    /// semantics, so recovery machinery sees an ordinary range loss.
    ///
    /// The square wave's phase offset is drawn from the world's dedicated
    /// fault stream at install time, so a population of flapping links
    /// desynchronises deterministically under the world seed. `duty` is
    /// clamped to `[0, 1]`; a zero `period` or a duty of `1.0` never flaps.
    pub fn flapping_link(mut self, peer: NodeId, period: SimDuration, duty: f64) -> Self {
        self.flaps.push(FlappingLink {
            peer,
            period,
            duty: duty.clamp(0.0, 1.0),
        });
        self
    }

    /// Derives a crash/restart churn schedule from a random stream: crash
    /// inter-arrival times are exponential with mean `mtbf`, downtimes are
    /// exponential with mean `mean_downtime` (floored at one second so a
    /// restart is always observable), covering `[0, horizon)`.
    ///
    /// Callers derive `rng` from their scenario seed, so the same seed
    /// always produces the same churn.
    pub fn churn(horizon: SimTime, mtbf: SimDuration, mean_downtime: SimDuration, rng: &mut SimRng) -> Self {
        let mut plan = FaultPlan::new();
        if mtbf == SimDuration::ZERO {
            return plan;
        }
        let mut t = SimTime::ZERO + SimDuration::from_secs_f64(rng.exponential(mtbf.as_secs_f64()));
        while t < horizon {
            let down = SimDuration::from_secs_f64(rng.exponential(mean_downtime.as_secs_f64()).max(1.0));
            plan = plan.crash_for(t, down);
            t = t + down + SimDuration::from_secs_f64(rng.exponential(mtbf.as_secs_f64()));
        }
        plan
    }
}

/// What happened to a node, as recorded in the world's lifecycle stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LifecycleKind {
    /// The node crashed (or was switched off).
    NodeDown,
    /// The node restarted.
    NodeUp,
    /// A radio went dark.
    RadioDown(RadioTech),
    /// A radio came back.
    RadioUp(RadioTech),
}

/// One entry of the world's typed lifecycle stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LifecycleEvent {
    /// When the transition happened.
    pub at: SimTime,
    /// The node concerned.
    pub node: NodeId,
    /// What happened.
    pub kind: LifecycleKind,
}

/// Aggregate fault-injection counters for experiment reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct FaultStats {
    /// Nodes crashed (transitions to down).
    pub crashes: u64,
    /// Nodes restarted (transitions back up).
    pub restarts: u64,
    /// Radio outages started.
    pub radio_outages: u64,
    /// Radios restored.
    pub radio_restores: u64,
    /// Payloads dropped by loss bursts.
    pub payloads_dropped: u64,
    /// Payloads bit-flipped by loss bursts.
    pub payloads_corrupted: u64,
}

/// The outcome a loss burst imposes on one payload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum BurstOutcome {
    Drop,
    Corrupt,
}

/// The world-side fault engine: installed plans, the dedicated fault RNG
/// stream, lifecycle log and counters.
///
/// The RNG is seeded independently of the world's master stream (from the
/// world seed, but through its own constant), so installing plans never
/// perturbs the draws a fault-free world would make.
pub(crate) struct FaultEngine {
    plans: BTreeMap<NodeId, FaultPlan>,
    /// True once any installed plan carries a loss burst; lets the delivery
    /// hot path skip all burst bookkeeping in burst-free worlds.
    any_bursts: bool,
    /// Flapping pairs from installed plans, phase-shifted at install time.
    flaps: Vec<ActiveFlap>,
    rng: SimRng,
    pub(crate) stats: FaultStats,
    pub(crate) lifecycle: Vec<LifecycleEvent>,
}

/// One installed flapping pair with its seeded phase offset resolved.
#[derive(Debug, Clone, Copy)]
struct ActiveFlap {
    a: NodeId,
    b: NodeId,
    period: SimDuration,
    /// Length of the up phase at the start of each (shifted) period.
    up_for: SimDuration,
    /// Seeded phase offset in `[0, period)`.
    phase: SimDuration,
}

impl ActiveFlap {
    /// True while the square wave is in its down phase at `now`.
    fn down_at(&self, now: SimTime) -> bool {
        let period = self.period.as_micros();
        if period == 0 {
            return false;
        }
        let pos = (now.as_micros().wrapping_add(self.phase.as_micros())) % period;
        pos >= self.up_for.as_micros()
    }
}

const FAULT_RNG_LABEL: u64 = 0xFA17_5EED_0000_0001;

impl FaultEngine {
    pub(crate) fn new(world_seed: u64) -> Self {
        FaultEngine {
            plans: BTreeMap::new(),
            any_bursts: false,
            flaps: Vec::new(),
            rng: SimRng::new(world_seed ^ FAULT_RNG_LABEL),
            stats: FaultStats::default(),
            lifecycle: Vec::new(),
        }
    }

    /// Registers a plan and returns the actions to schedule. Installing a
    /// second plan for the same node extends the first. Flapping pairs get
    /// their phase offset drawn from the fault stream here — flap-free plans
    /// draw nothing, keeping burst/churn-only worlds byte-identical.
    pub(crate) fn install(&mut self, node: NodeId, plan: FaultPlan) -> Vec<(SimTime, usize)> {
        self.any_bursts |= !plan.bursts.is_empty();
        for flap in &plan.flaps {
            let period = flap.period.as_micros();
            let phase = if period == 0 { 0 } else { self.rng.range(0..period) };
            self.flaps.push(ActiveFlap {
                a: node,
                b: flap.peer,
                period: flap.period,
                up_for: flap.period.mul_f64(flap.duty),
                phase: SimDuration::from_micros(phase),
            });
        }
        let entry = self.plans.entry(node).or_default();
        let base = entry.actions.len();
        let schedule: Vec<(SimTime, usize)> = plan
            .actions
            .iter()
            .enumerate()
            .map(|(i, (at, _))| (*at, base + i))
            .collect();
        entry.actions.extend(plan.actions);
        entry.bursts.extend(plan.bursts);
        entry.flaps.extend(plan.flaps);
        schedule
    }

    /// The action a previously installed plan scheduled under `idx`.
    pub(crate) fn action(&self, node: NodeId, idx: usize) -> Option<FaultAction> {
        self.plans.get(&node).and_then(|p| p.actions.get(idx)).map(|(_, a)| *a)
    }

    /// True if any installed plan has loss bursts (cheap guard for the
    /// delivery hot path).
    pub(crate) fn has_bursts(&self) -> bool {
        self.any_bursts
    }

    /// True if any installed plan has flapping pairs (cheap guard for the
    /// connect/delivery/link-check hot paths).
    pub(crate) fn has_flaps(&self) -> bool {
        !self.flaps.is_empty()
    }

    /// True while some flapping pair covering the `x`/`y` link is in its
    /// down phase at `now`. Pure arithmetic — no randomness is drawn, so the
    /// predicate can sit on hot paths without perturbing traces.
    pub(crate) fn link_flapped_down(&self, x: NodeId, y: NodeId, now: SimTime) -> bool {
        self.flaps
            .iter()
            .any(|f| ((f.a == x && f.b == y) || (f.a == y && f.b == x)) && f.down_at(now))
    }

    /// Samples the fate of a payload travelling between `from` and `to` at
    /// `now`. Draws randomness only while a burst window of either endpoint
    /// is active, so burst-free instants cost nothing and perturb nothing.
    pub(crate) fn sample_burst(&mut self, from: NodeId, to: NodeId, now: SimTime) -> Option<BurstOutcome> {
        let (mut drop_p, mut corrupt_p) = (0.0f64, 0.0f64);
        for (node, other) in [(from, to), (to, from)] {
            if let Some(plan) = self.plans.get(&node) {
                for burst in &plan.bursts {
                    if burst.active_at(now) && burst.applies_to_peer(other) {
                        drop_p = drop_p.max(burst.drop_prob);
                        corrupt_p = corrupt_p.max(burst.corrupt_prob);
                    }
                }
            }
        }
        if drop_p <= 0.0 && corrupt_p <= 0.0 {
            return None;
        }
        if self.rng.chance(drop_p) {
            self.stats.payloads_dropped += 1;
            return Some(BurstOutcome::Drop);
        }
        if self.rng.chance(corrupt_p) {
            self.stats.payloads_corrupted += 1;
            return Some(BurstOutcome::Corrupt);
        }
        None
    }

    /// Flips `1..=4` random bits of a payload in place (no-op on empty
    /// payloads).
    pub(crate) fn corrupt_payload(&mut self, payload: &mut [u8]) {
        if payload.is_empty() {
            return;
        }
        let flips = 1 + self.rng.index(4);
        for _ in 0..flips {
            let byte = self.rng.index(payload.len());
            let bit = self.rng.index(8) as u8;
            payload[byte] ^= 1 << bit;
        }
    }

    pub(crate) fn record(&mut self, at: SimTime, node: NodeId, kind: LifecycleKind) {
        match kind {
            LifecycleKind::NodeDown => self.stats.crashes += 1,
            LifecycleKind::NodeUp => self.stats.restarts += 1,
            LifecycleKind::RadioDown(_) => self.stats.radio_outages += 1,
            LifecycleKind::RadioUp(_) => self.stats.radio_restores += 1,
        }
        self.lifecycle.push(LifecycleEvent { at, node, kind });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_accumulates_actions_in_order() {
        let plan = FaultPlan::new()
            .crash_for(SimTime::from_secs(10), SimDuration::from_secs(5))
            .radio_outage(RadioTech::Wlan, SimTime::from_secs(20), SimDuration::from_secs(2))
            .crash_at(SimTime::from_secs(100));
        assert_eq!(
            plan.actions(),
            &[
                (SimTime::from_secs(10), FaultAction::NodeDown),
                (SimTime::from_secs(15), FaultAction::NodeUp),
                (SimTime::from_secs(20), FaultAction::RadioDown(RadioTech::Wlan)),
                (SimTime::from_secs(22), FaultAction::RadioUp(RadioTech::Wlan)),
                (SimTime::from_secs(100), FaultAction::NodeDown),
            ]
        );
        assert!(plan.bursts().is_empty());
        assert!(!plan.is_empty());
        assert!(FaultPlan::new().is_empty());
    }

    #[test]
    fn loss_burst_probabilities_are_clamped_and_windows_tested() {
        let plan = FaultPlan::new().loss_burst(SimTime::from_secs(5), SimTime::from_secs(10), 2.0, -1.0);
        let burst = plan.bursts()[0];
        assert_eq!(burst.drop_prob, 1.0);
        assert_eq!(burst.corrupt_prob, 0.0);
        assert!(!burst.active_at(SimTime::from_secs(4)));
        assert!(burst.active_at(SimTime::from_secs(5)));
        assert!(burst.active_at(SimTime::from_secs(9)));
        assert!(!burst.active_at(SimTime::from_secs(10)));
    }

    #[test]
    fn churn_is_deterministic_in_the_seed_and_alternates() {
        let horizon = SimTime::from_secs(3600);
        let mtbf = SimDuration::from_secs(300);
        let down = SimDuration::from_secs(20);
        let a = FaultPlan::churn(horizon, mtbf, down, &mut SimRng::new(7));
        let b = FaultPlan::churn(horizon, mtbf, down, &mut SimRng::new(7));
        assert_eq!(a, b, "same seed must derive the same plan");
        let c = FaultPlan::churn(horizon, mtbf, down, &mut SimRng::new(8));
        assert_ne!(a, c, "different seeds should not collide");
        // Actions strictly alternate Down/Up, times non-decreasing, within
        // horizon for the Down edges.
        let actions = a.actions();
        assert!(!actions.is_empty(), "an hour at 5-minute MTBF must produce churn");
        for (i, (at, action)) in actions.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*action, FaultAction::NodeDown);
                assert!(*at < horizon);
            } else {
                assert_eq!(*action, FaultAction::NodeUp);
            }
            if i > 0 {
                assert!(actions[i - 1].0 <= *at);
            }
        }
        assert_eq!(actions.len() % 2, 0, "every churn crash has a restart");
    }

    #[test]
    fn zero_mtbf_means_no_churn() {
        let plan = FaultPlan::churn(
            SimTime::from_secs(100),
            SimDuration::ZERO,
            SimDuration::from_secs(5),
            &mut SimRng::new(1),
        );
        assert!(plan.is_empty());
    }

    #[test]
    fn engine_samples_bursts_only_inside_windows() {
        let mut engine = FaultEngine::new(42);
        let node = NodeId::from_raw(0);
        let peer = NodeId::from_raw(1);
        engine.install(
            node,
            FaultPlan::new().loss_burst(SimTime::from_secs(10), SimTime::from_secs(20), 1.0, 0.0),
        );
        assert!(engine.has_bursts());
        // Outside the window: no outcome and no randomness drawn.
        assert_eq!(engine.sample_burst(node, peer, SimTime::from_secs(5)), None);
        // Inside, drop_prob 1.0 always drops, in either direction.
        assert_eq!(
            engine.sample_burst(node, peer, SimTime::from_secs(15)),
            Some(BurstOutcome::Drop)
        );
        assert_eq!(
            engine.sample_burst(peer, node, SimTime::from_secs(15)),
            Some(BurstOutcome::Drop)
        );
        assert_eq!(engine.stats.payloads_dropped, 2);
    }

    #[test]
    fn link_bursts_target_only_the_planned_pair() {
        let mut engine = FaultEngine::new(7);
        let node = NodeId::from_raw(0);
        let flaky_peer = NodeId::from_raw(1);
        let clean_peer = NodeId::from_raw(2);
        engine.install(
            node,
            FaultPlan::new().link_burst(flaky_peer, SimTime::from_secs(10), SimTime::from_secs(20), 1.0, 0.0),
        );
        assert!(engine.has_bursts());
        let inside = SimTime::from_secs(15);
        // The targeted pair drops in both directions...
        assert_eq!(engine.sample_burst(node, flaky_peer, inside), Some(BurstOutcome::Drop));
        assert_eq!(engine.sample_burst(flaky_peer, node, inside), Some(BurstOutcome::Drop));
        // ...while the node's other links stay clean (and draw no randomness).
        assert_eq!(engine.sample_burst(node, clean_peer, inside), None);
        assert_eq!(engine.sample_burst(clean_peer, node, inside), None);
        // Outside the window even the targeted pair is clean.
        assert_eq!(engine.sample_burst(node, flaky_peer, SimTime::from_secs(25)), None);
        assert_eq!(engine.stats.payloads_dropped, 2);
    }

    #[test]
    fn flapping_link_square_wave_is_periodic_and_pairwise() {
        let mut engine = FaultEngine::new(42);
        let node = NodeId::from_raw(0);
        let flaky = NodeId::from_raw(1);
        let clean = NodeId::from_raw(2);
        let period = SimDuration::from_secs(10);
        let plan = FaultPlan::new().flapping_link(flaky, period, 0.6);
        assert!(!plan.is_empty(), "a flap-only plan must install");
        assert_eq!(plan.flaps().len(), 1);
        engine.install(node, plan);
        assert!(engine.has_flaps());
        // The wave must be down for 40% of every period, in both directions,
        // and strictly periodic.
        let micros_down: u64 = (0..10_000)
            .filter(|i| engine.link_flapped_down(node, flaky, SimTime::from_millis(i * 10)))
            .count() as u64;
        assert!(
            (3_500..=4_500).contains(&micros_down),
            "~40% of samples should be down, got {micros_down}/10000"
        );
        for i in 0..2_000u64 {
            let t = SimTime::from_millis(i * 10);
            let wrapped = SimTime::from_micros(t.as_micros() + period.as_micros());
            assert_eq!(
                engine.link_flapped_down(node, flaky, t),
                engine.link_flapped_down(node, flaky, wrapped),
                "square wave must repeat with its period"
            );
            assert_eq!(
                engine.link_flapped_down(node, flaky, t),
                engine.link_flapped_down(flaky, node, t),
                "flap is symmetric in the pair"
            );
            assert!(!engine.link_flapped_down(node, clean, t), "other pairs never flap");
        }
    }

    #[test]
    fn flapping_phase_is_seeded_and_deterministic() {
        let node = NodeId::from_raw(0);
        let peer = NodeId::from_raw(1);
        let period = SimDuration::from_secs(8);
        let wave = |seed: u64| {
            let mut engine = FaultEngine::new(seed);
            engine.install(node, FaultPlan::new().flapping_link(peer, period, 0.5));
            (0..1_000u64)
                .map(|i| engine.link_flapped_down(node, peer, SimTime::from_millis(i * 20)))
                .collect::<Vec<bool>>()
        };
        assert_eq!(wave(7), wave(7), "same seed, same phase");
        assert_ne!(wave(7), wave(8), "different seeds shift the phase");
    }

    #[test]
    fn degenerate_duty_cycles_never_flap_or_always_flap() {
        let mut engine = FaultEngine::new(3);
        let node = NodeId::from_raw(0);
        let up_peer = NodeId::from_raw(1);
        let down_peer = NodeId::from_raw(2);
        engine.install(
            node,
            FaultPlan::new()
                .flapping_link(up_peer, SimDuration::from_secs(5), 1.0)
                .flapping_link(down_peer, SimDuration::from_secs(5), 0.0),
        );
        for i in 0..500u64 {
            let t = SimTime::from_millis(i * 37);
            assert!(!engine.link_flapped_down(node, up_peer, t), "duty 1.0 is always up");
            assert!(engine.link_flapped_down(node, down_peer, t), "duty 0.0 is always down");
        }
        // Zero period cannot flap (and must not divide by zero).
        let mut zero = FaultEngine::new(4);
        zero.install(node, FaultPlan::new().flapping_link(up_peer, SimDuration::ZERO, 0.5));
        assert!(!zero.link_flapped_down(node, up_peer, SimTime::from_secs(1)));
    }

    #[test]
    fn corruption_flips_bits_deterministically() {
        let mut a = FaultEngine::new(9);
        let mut b = FaultEngine::new(9);
        let original = vec![0u8; 32];
        let mut pa = original.clone();
        let mut pb = original.clone();
        a.corrupt_payload(&mut pa);
        b.corrupt_payload(&mut pb);
        assert_eq!(pa, pb, "same engine seed must corrupt identically");
        assert_ne!(pa, original, "at least one bit must flip");
        // Empty payloads are left alone.
        let mut empty: Vec<u8> = Vec::new();
        a.corrupt_payload(&mut empty);
        assert!(empty.is_empty());
    }

    #[test]
    fn installing_a_second_plan_extends_the_first() {
        let mut engine = FaultEngine::new(1);
        let node = NodeId::from_raw(3);
        let first = engine.install(node, FaultPlan::new().crash_at(SimTime::from_secs(1)));
        let second = engine.install(node, FaultPlan::new().restart_at(SimTime::from_secs(2)));
        assert_eq!(first, vec![(SimTime::from_secs(1), 0)]);
        assert_eq!(second, vec![(SimTime::from_secs(2), 1)]);
        assert_eq!(engine.action(node, 0), Some(FaultAction::NodeDown));
        assert_eq!(engine.action(node, 1), Some(FaultAction::NodeUp));
        assert_eq!(engine.action(node, 2), None);
        assert_eq!(engine.action(NodeId::from_raw(9), 0), None);
    }
}
