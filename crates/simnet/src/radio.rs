//! Radio technology models.
//!
//! PeerHood runs over Bluetooth, WLAN and GPRS (Ch. 2). Each technology is
//! described by a [`RadioProfile`]: coverage range, bit-rate, inquiry
//! behaviour, connection-setup latency/fault distribution and the
//! link-quality model. The Bluetooth profile is calibrated to the numbers the
//! thesis measured: single connection setup of roughly 1.5–9 s and a ~15 %
//! per-attempt fault probability (so a two-leg bridge connection takes 3–18 s
//! and fails ~3 times out of 10, §4.3), an inquiry cycle of ~10 s, and the
//! 0–255 link-quality scale with the 230 "signal low" threshold used in
//! §5.2.1.

use serde::{Deserialize, Serialize};

use crate::rng::SimRng;
use crate::time::SimDuration;

/// The wireless technologies PeerHood plugins exist for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum RadioTech {
    /// Short-range, slow setup, the technology chosen for the thesis'
    /// implementation.
    Bluetooth,
    /// Medium-range, fast setup wireless LAN.
    Wlan,
    /// Cellular packet radio: infrastructure coverage (modelled as unlimited
    /// range outside of configured dead zones), higher latency, low bit-rate.
    Gprs,
}

impl RadioTech {
    /// All supported technologies, in plugin registration order.
    pub const ALL: [RadioTech; 3] = [RadioTech::Bluetooth, RadioTech::Wlan, RadioTech::Gprs];

    /// Short human-readable name (`"bt"`, `"wlan"`, `"gprs"`).
    pub fn short_name(self) -> &'static str {
        match self {
            RadioTech::Bluetooth => "bt",
            RadioTech::Wlan => "wlan",
            RadioTech::Gprs => "gprs",
        }
    }
}

impl std::fmt::Display for RadioTech {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.short_name())
    }
}

/// Maximum value of the link-quality scale (Bluetooth HCI link quality is a
/// byte).
pub const QUALITY_MAX: u8 = 255;

/// The "signal low" threshold used throughout the thesis (Fig. 3.9, §5.2.1).
pub const QUALITY_LOW_THRESHOLD: u8 = 230;

/// Behavioural parameters of one radio technology.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioProfile {
    /// Technology this profile describes.
    pub tech: RadioTech,
    /// Coverage radius in metres. `None` means infrastructure coverage
    /// (GPRS): any two nodes can talk unless one is inside a dead zone.
    pub range_m: Option<f64>,
    /// Application-visible bit-rate in bits per second.
    pub bitrate_bps: f64,
    /// Fixed per-message latency added on top of the serialisation delay.
    pub base_latency: SimDuration,
    /// How long one device-discovery inquiry scan takes.
    pub inquiry_duration: SimDuration,
    /// Probability that a device which is in range and discoverable is
    /// nevertheless missed by a single inquiry (Bluetooth inquiries are
    /// lossy).
    pub inquiry_miss_prob: f64,
    /// If true, a device that is itself running an inquiry is not
    /// discoverable by others during the scan (the Bluetooth asymmetry
    /// discussed in §3.4.2).
    pub inquiry_asymmetric: bool,
    /// Minimum connection-establishment latency in seconds.
    pub setup_min_s: f64,
    /// Maximum connection-establishment latency in seconds.
    pub setup_max_s: f64,
    /// Probability that a connection attempt fails outright even though the
    /// peer is in range ("normal Bluetooth connection fault", §4.3).
    pub setup_fault_prob: f64,
    /// Distance (as a fraction of the range) below which quality is at its
    /// maximum.
    pub quality_plateau_fraction: f64,
    /// Link quality measured exactly at the edge of the coverage range.
    pub quality_at_edge: u8,
    /// Standard deviation of the gaussian noise added to quality samples.
    pub quality_noise_std: f64,
}

impl RadioProfile {
    /// The Bluetooth profile calibrated to the thesis' measurements.
    pub fn bluetooth() -> Self {
        RadioProfile {
            tech: RadioTech::Bluetooth,
            range_m: Some(10.0),
            bitrate_bps: 700_000.0,
            base_latency: SimDuration::from_millis(30),
            inquiry_duration: SimDuration::from_millis(10_240),
            inquiry_miss_prob: 0.05,
            inquiry_asymmetric: true,
            setup_min_s: 1.5,
            setup_max_s: 9.0,
            setup_fault_prob: 0.15,
            quality_plateau_fraction: 0.25,
            quality_at_edge: 170,
            quality_noise_std: 2.0,
        }
    }

    /// A wireless-LAN profile: longer range, quick association, few faults.
    pub fn wlan() -> Self {
        RadioProfile {
            tech: RadioTech::Wlan,
            range_m: Some(50.0),
            bitrate_bps: 10_000_000.0,
            base_latency: SimDuration::from_millis(5),
            inquiry_duration: SimDuration::from_millis(2_000),
            inquiry_miss_prob: 0.01,
            inquiry_asymmetric: false,
            setup_min_s: 0.2,
            setup_max_s: 1.0,
            setup_fault_prob: 0.02,
            quality_plateau_fraction: 0.3,
            quality_at_edge: 180,
            quality_noise_std: 3.0,
        }
    }

    /// A GPRS profile: infrastructure coverage, slow and high latency.
    pub fn gprs() -> Self {
        RadioProfile {
            tech: RadioTech::Gprs,
            range_m: None,
            bitrate_bps: 40_000.0,
            base_latency: SimDuration::from_millis(600),
            inquiry_duration: SimDuration::from_millis(1_000),
            inquiry_miss_prob: 0.0,
            inquiry_asymmetric: false,
            setup_min_s: 1.0,
            setup_max_s: 3.0,
            setup_fault_prob: 0.05,
            quality_plateau_fraction: 1.0,
            quality_at_edge: 255,
            quality_noise_std: 0.0,
        }
    }

    /// Returns the default profile for a technology.
    pub fn default_for(tech: RadioTech) -> Self {
        match tech {
            RadioTech::Bluetooth => RadioProfile::bluetooth(),
            RadioTech::Wlan => RadioProfile::wlan(),
            RadioTech::Gprs => RadioProfile::gprs(),
        }
    }

    /// True if two nodes separated by `distance_m` are within radio range.
    /// Infrastructure technologies are always in range (dead zones are
    /// handled by the world, which knows node positions).
    pub fn in_range(&self, distance_m: f64) -> bool {
        match self.range_m {
            Some(range) => distance_m <= range,
            None => true,
        }
    }

    /// Noise-free link quality for a pair separated by `distance_m`, or
    /// `None` if out of range.
    ///
    /// The model is flat at [`QUALITY_MAX`] up to `quality_plateau_fraction`
    /// of the range and then falls off quadratically to `quality_at_edge` at
    /// the edge of coverage, which reproduces the fast decay the thesis
    /// observed when carrying a laptop from the office into the corridor.
    pub fn quality_at_distance(&self, distance_m: f64) -> Option<u8> {
        let range = match self.range_m {
            Some(r) => r,
            None => return Some(QUALITY_MAX),
        };
        if distance_m > range {
            return None;
        }
        let plateau = range * self.quality_plateau_fraction;
        if distance_m <= plateau {
            return Some(QUALITY_MAX);
        }
        let span = (range - plateau).max(f64::EPSILON);
        let frac = (distance_m - plateau) / span; // 0..1
        let drop = (QUALITY_MAX as f64 - self.quality_at_edge as f64) * frac * frac;
        Some((QUALITY_MAX as f64 - drop).round().clamp(0.0, 255.0) as u8)
    }

    /// Link quality with measurement noise applied.
    pub fn sample_quality(&self, distance_m: f64, rng: &mut SimRng) -> Option<u8> {
        self.quality_at_distance(distance_m).map(|q| {
            if self.quality_noise_std <= 0.0 {
                q
            } else {
                rng.gaussian(q as f64, self.quality_noise_std).round().clamp(0.0, 255.0) as u8
            }
        })
    }

    /// Draws a connection-establishment latency from the profile.
    pub fn sample_setup_latency(&self, rng: &mut SimRng) -> SimDuration {
        SimDuration::from_secs_f64(rng.uniform_f64(self.setup_min_s, self.setup_max_s))
    }

    /// Returns true if a connection attempt should fail due to a random
    /// technology-level fault.
    pub fn sample_setup_fault(&self, rng: &mut SimRng) -> bool {
        rng.chance(self.setup_fault_prob)
    }

    /// Time needed to serialise and deliver `bytes` of payload over this
    /// technology, including the fixed base latency.
    pub fn transmission_delay(&self, bytes: usize) -> SimDuration {
        let serialise = (bytes as f64 * 8.0) / self.bitrate_bps;
        self.base_latency + SimDuration::from_secs_f64(serialise)
    }

    /// The distance at which the noise-free quality first drops below the
    /// given threshold, or `None` for infrastructure technologies. Useful for
    /// placing nodes "at the edge" in scenarios.
    pub fn distance_for_quality(&self, threshold: u8) -> Option<f64> {
        let range = self.range_m?;
        if threshold == QUALITY_MAX {
            return Some(range * self.quality_plateau_fraction);
        }
        if threshold <= self.quality_at_edge {
            return Some(range);
        }
        let plateau = range * self.quality_plateau_fraction;
        let span = range - plateau;
        let frac =
            ((QUALITY_MAX as f64 - threshold as f64) / (QUALITY_MAX as f64 - self.quality_at_edge as f64)).sqrt();
        Some(plateau + span * frac)
    }
}

/// The set of profiles in force for a simulation world.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RadioEnvironment {
    /// Profile per technology.
    pub bluetooth: RadioProfile,
    /// Profile per technology.
    pub wlan: RadioProfile,
    /// Profile per technology.
    pub gprs: RadioProfile,
}

impl Default for RadioEnvironment {
    fn default() -> Self {
        RadioEnvironment {
            bluetooth: RadioProfile::bluetooth(),
            wlan: RadioProfile::wlan(),
            gprs: RadioProfile::gprs(),
        }
    }
}

impl RadioEnvironment {
    /// Returns the profile for the requested technology.
    pub fn profile(&self, tech: RadioTech) -> &RadioProfile {
        match tech {
            RadioTech::Bluetooth => &self.bluetooth,
            RadioTech::Wlan => &self.wlan,
            RadioTech::Gprs => &self.gprs,
        }
    }

    /// Mutable access to the profile for the requested technology.
    pub fn profile_mut(&mut self, tech: RadioTech) -> &mut RadioProfile {
        match tech {
            RadioTech::Bluetooth => &mut self.bluetooth,
            RadioTech::Wlan => &mut self.wlan,
            RadioTech::Gprs => &mut self.gprs,
        }
    }

    /// An environment where all radio setup is instantaneous and fault-free.
    /// Useful for tests that exercise middleware logic rather than radio
    /// behaviour.
    pub fn ideal() -> Self {
        let mut env = RadioEnvironment::default();
        for tech in RadioTech::ALL {
            let p = env.profile_mut(tech);
            p.setup_min_s = 0.01;
            p.setup_max_s = 0.02;
            p.setup_fault_prob = 0.0;
            p.inquiry_miss_prob = 0.0;
            p.inquiry_asymmetric = false;
            p.quality_noise_std = 0.0;
        }
        env
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_profiles_match_their_tech() {
        for tech in RadioTech::ALL {
            assert_eq!(RadioProfile::default_for(tech).tech, tech);
        }
    }

    #[test]
    fn bluetooth_range_and_quality_shape() {
        let bt = RadioProfile::bluetooth();
        assert!(bt.in_range(5.0));
        assert!(!bt.in_range(10.5));
        assert_eq!(bt.quality_at_distance(0.0), Some(QUALITY_MAX));
        assert_eq!(bt.quality_at_distance(1.0), Some(QUALITY_MAX));
        let mid = bt.quality_at_distance(6.0).unwrap();
        let edge = bt.quality_at_distance(10.0).unwrap();
        assert!(mid < QUALITY_MAX && mid > edge, "mid {mid}, edge {edge}");
        assert_eq!(edge, bt.quality_at_edge);
        assert_eq!(bt.quality_at_distance(12.0), None);
    }

    #[test]
    fn quality_monotonically_decreases_with_distance() {
        let bt = RadioProfile::bluetooth();
        let mut prev = u8::MAX;
        for step in 0..=100 {
            let d = step as f64 * 0.1;
            let q = bt.quality_at_distance(d).unwrap();
            assert!(q <= prev, "quality increased at {d}");
            prev = q;
        }
    }

    #[test]
    fn gprs_is_infrastructure() {
        let g = RadioProfile::gprs();
        assert!(g.in_range(5_000.0));
        assert_eq!(g.quality_at_distance(5_000.0), Some(QUALITY_MAX));
    }

    #[test]
    fn setup_latency_matches_paper_bounds() {
        // §4.3: a bridge connection (two sequential setups) took 3-18 s, so a
        // single Bluetooth setup must sit within 1.5-9 s.
        let bt = RadioProfile::bluetooth();
        let mut rng = SimRng::new(1);
        for _ in 0..200 {
            let s = bt.sample_setup_latency(&mut rng).as_secs_f64();
            assert!((1.5..=9.0).contains(&s), "setup latency {s}");
        }
    }

    #[test]
    fn fault_rate_gives_roughly_three_in_ten_bridge_failures() {
        // Two independent legs, each with the profile fault probability:
        // P(bridge fails) = 1 - (1-p)^2 ≈ 0.28 for p = 0.15, matching the
        // 3-out-of-10 failures reported in §4.3.
        let bt = RadioProfile::bluetooth();
        let mut rng = SimRng::new(2);
        let trials = 20_000;
        let failures = (0..trials)
            .filter(|_| bt.sample_setup_fault(&mut rng) || bt.sample_setup_fault(&mut rng))
            .count();
        let rate = failures as f64 / trials as f64;
        assert!((0.24..0.33).contains(&rate), "bridge failure rate {rate}");
    }

    #[test]
    fn transmission_delay_scales_with_size() {
        let bt = RadioProfile::bluetooth();
        let small = bt.transmission_delay(100);
        let large = bt.transmission_delay(100_000);
        assert!(large > small);
        // 100 kB at 700 kbit/s is a bit over a second.
        assert!(large.as_secs_f64() > 1.0 && large.as_secs_f64() < 2.5);
    }

    #[test]
    fn distance_for_quality_inverts_the_model() {
        let bt = RadioProfile::bluetooth();
        let d = bt.distance_for_quality(QUALITY_LOW_THRESHOLD).unwrap();
        let q = bt.quality_at_distance(d).unwrap();
        assert!(
            (q as i16 - QUALITY_LOW_THRESHOLD as i16).abs() <= 2,
            "inversion error: {q} vs {QUALITY_LOW_THRESHOLD}"
        );
        assert!(d > 2.5 && d < 10.0);
    }

    #[test]
    fn sample_quality_noise_stays_in_scale() {
        let bt = RadioProfile::bluetooth();
        let mut rng = SimRng::new(3);
        for _ in 0..1000 {
            let q = bt.sample_quality(9.5, &mut rng).unwrap();
            assert!(q >= 150, "unreasonably low sample {q}");
        }
    }

    #[test]
    fn ideal_environment_is_fault_free() {
        let env = RadioEnvironment::ideal();
        for tech in RadioTech::ALL {
            let p = env.profile(tech);
            assert_eq!(p.setup_fault_prob, 0.0);
            assert_eq!(p.inquiry_miss_prob, 0.0);
            assert!(!p.inquiry_asymmetric);
        }
    }

    #[test]
    fn short_names() {
        assert_eq!(RadioTech::Bluetooth.short_name(), "bt");
        assert_eq!(RadioTech::Wlan.to_string(), "wlan");
        assert_eq!(RadioTech::Gprs.to_string(), "gprs");
    }
}
