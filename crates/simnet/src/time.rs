//! Virtual simulation time.
//!
//! The whole reproduction runs against a virtual clock with microsecond
//! resolution. [`SimTime`] is an absolute instant since the start of the
//! simulation and [`SimDuration`] is a span between two instants. Both are
//! thin wrappers over `u64` microseconds so they are cheap to copy, totally
//! ordered and hashable.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

use serde::{Deserialize, Serialize};

/// Number of microseconds in one second.
pub const MICROS_PER_SEC: u64 = 1_000_000;
/// Number of microseconds in one millisecond.
pub const MICROS_PER_MILLI: u64 = 1_000;

/// An absolute instant of virtual time, measured in microseconds since the
/// simulation epoch (time zero).
///
/// ```
/// use simnet::time::{SimTime, SimDuration};
///
/// let t = SimTime::ZERO + SimDuration::from_secs(5);
/// assert_eq!(t.as_secs_f64(), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimTime(u64);

/// A span of virtual time, measured in microseconds.
///
/// ```
/// use simnet::time::SimDuration;
///
/// let d = SimDuration::from_millis(1500);
/// assert_eq!(d.as_secs_f64(), 1.5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch.
    pub const ZERO: SimTime = SimTime(0);
    /// The largest representable instant; used as an "infinitely far" horizon.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Creates an instant from raw microseconds since the epoch.
    pub const fn from_micros(micros: u64) -> Self {
        SimTime(micros)
    }

    /// Creates an instant from whole milliseconds since the epoch.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime(millis * MICROS_PER_MILLI)
    }

    /// Creates an instant from whole seconds since the epoch.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime(secs * MICROS_PER_SEC)
    }

    /// Creates an instant from fractional seconds since the epoch.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid time: {secs}");
        SimTime((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds since the epoch.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds since the epoch (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MILLI
    }

    /// Whole seconds since the epoch (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Fractional seconds since the epoch.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// Time elapsed since `earlier`, saturating to zero if `earlier` is later.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }

    /// Returns the later of `self` and `other`.
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Returns the earlier of `self` and `other`.
    pub fn min(self, other: SimTime) -> SimTime {
        if self <= other {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// A zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);
    /// The largest representable span.
    pub const MAX: SimDuration = SimDuration(u64::MAX);

    /// Creates a span from raw microseconds.
    pub const fn from_micros(micros: u64) -> Self {
        SimDuration(micros)
    }

    /// Creates a span from whole milliseconds.
    pub const fn from_millis(millis: u64) -> Self {
        SimDuration(millis * MICROS_PER_MILLI)
    }

    /// Creates a span from whole seconds.
    pub const fn from_secs(secs: u64) -> Self {
        SimDuration(secs * MICROS_PER_SEC)
    }

    /// Creates a span from fractional seconds.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative or not finite.
    pub fn from_secs_f64(secs: f64) -> Self {
        assert!(secs.is_finite() && secs >= 0.0, "invalid duration: {secs}");
        SimDuration((secs * MICROS_PER_SEC as f64).round() as u64)
    }

    /// Raw microseconds.
    pub const fn as_micros(self) -> u64 {
        self.0
    }

    /// Whole milliseconds (truncated).
    pub const fn as_millis(self) -> u64 {
        self.0 / MICROS_PER_MILLI
    }

    /// Whole seconds (truncated).
    pub const fn as_secs(self) -> u64 {
        self.0 / MICROS_PER_SEC
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / MICROS_PER_SEC as f64
    }

    /// True if the span is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// Checked subtraction, returning `None` on underflow.
    pub fn checked_sub(self, other: SimDuration) -> Option<SimDuration> {
        self.0.checked_sub(other.0).map(SimDuration)
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies the span by a scalar, saturating on overflow.
    pub fn saturating_mul(self, factor: u64) -> SimDuration {
        SimDuration(self.0.saturating_mul(factor))
    }

    /// Scales the span by a floating point factor (must be non-negative and finite).
    ///
    /// # Panics
    ///
    /// Panics if `factor` is negative or not finite.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor.is_finite() && factor >= 0.0, "invalid factor: {factor}");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_secs(3).as_micros(), 3_000_000);
        assert_eq!(SimTime::from_millis(2500).as_secs(), 2);
        assert_eq!(SimDuration::from_secs(1).as_millis(), 1000);
        assert_eq!(SimDuration::from_millis(1).as_micros(), 1000);
    }

    #[test]
    fn arithmetic_behaves() {
        let t = SimTime::from_secs(10);
        let d = SimDuration::from_secs(4);
        assert_eq!((t + d).as_secs(), 14);
        assert_eq!((t - d).as_secs(), 6);
        assert_eq!((t - SimTime::from_secs(4)).as_secs(), 6);
        assert_eq!((d + d).as_secs(), 8);
        assert_eq!((d * 3).as_secs(), 12);
        assert_eq!((d / 2).as_secs(), 2);
    }

    #[test]
    fn fractional_seconds() {
        let d = SimDuration::from_secs_f64(1.25);
        assert_eq!(d.as_micros(), 1_250_000);
        let t = SimTime::from_secs_f64(0.5);
        assert!((t.as_secs_f64() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn saturating_operations() {
        assert_eq!(
            SimTime::from_secs(1).saturating_since(SimTime::from_secs(5)),
            SimDuration::ZERO
        );
        assert_eq!(SimTime::MAX.saturating_add(SimDuration::from_secs(1)), SimTime::MAX);
        assert_eq!(
            SimDuration::from_secs(1).saturating_sub(SimDuration::from_secs(2)),
            SimDuration::ZERO
        );
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
    }

    #[test]
    fn display_is_human_readable() {
        assert_eq!(SimTime::from_millis(1500).to_string(), "1.500s");
        assert_eq!(SimDuration::from_millis(250).to_string(), "0.250s");
    }

    #[test]
    fn mul_f64_scales() {
        let d = SimDuration::from_secs(10);
        assert_eq!(d.mul_f64(0.5).as_secs(), 5);
        assert_eq!(d.mul_f64(2.0).as_secs(), 20);
    }

    #[test]
    #[should_panic]
    fn from_secs_f64_rejects_negative() {
        let _ = SimDuration::from_secs_f64(-1.0);
    }
}
