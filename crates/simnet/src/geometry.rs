//! Plane geometry used by the mobility and radio models.
//!
//! Devices live in a two-dimensional plane with coordinates expressed in
//! metres. The paper's scenarios (offices, corridors, a tunnel) are all flat,
//! so two dimensions are sufficient.

use serde::{Deserialize, Serialize};

/// A point in the plane, in metres.
///
/// ```
/// use simnet::geometry::Point;
///
/// let a = Point::new(0.0, 0.0);
/// let b = Point::new(3.0, 4.0);
/// assert_eq!(a.distance(b), 5.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Point {
    /// X coordinate in metres.
    pub x: f64,
    /// Y coordinate in metres.
    pub y: f64,
}

impl Point {
    /// The origin.
    pub const ORIGIN: Point = Point { x: 0.0, y: 0.0 };

    /// Creates a point from coordinates in metres.
    pub const fn new(x: f64, y: f64) -> Self {
        Point { x, y }
    }

    /// Euclidean distance to another point.
    pub fn distance(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        (dx * dx + dy * dy).sqrt()
    }

    /// Squared Euclidean distance (cheaper when only comparing).
    pub fn distance_sq(self, other: Point) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        dx * dx + dy * dy
    }

    /// Linear interpolation from `self` towards `other`.
    ///
    /// `t = 0.0` yields `self`, `t = 1.0` yields `other`; values outside the
    /// unit interval extrapolate along the same line.
    pub fn lerp(self, other: Point, t: f64) -> Point {
        Point {
            x: self.x + (other.x - self.x) * t,
            y: self.y + (other.y - self.y) * t,
        }
    }

    /// Translates the point by the given offsets.
    pub fn offset(self, dx: f64, dy: f64) -> Point {
        Point {
            x: self.x + dx,
            y: self.y + dy,
        }
    }
}

/// An axis-aligned rectangle, used for simulation areas and radio dead zones.
///
/// ```
/// use simnet::geometry::{Point, Rect};
///
/// let r = Rect::new(0.0, 0.0, 10.0, 5.0);
/// assert!(r.contains(Point::new(5.0, 2.0)));
/// assert!(!r.contains(Point::new(11.0, 2.0)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Rect {
    /// Minimum x coordinate.
    pub min_x: f64,
    /// Minimum y coordinate.
    pub min_y: f64,
    /// Maximum x coordinate.
    pub max_x: f64,
    /// Maximum y coordinate.
    pub max_y: f64,
}

impl Rect {
    /// Creates a rectangle from its corner coordinates.
    ///
    /// # Panics
    ///
    /// Panics if the minimum corner is not less than or equal to the maximum
    /// corner on both axes.
    pub fn new(min_x: f64, min_y: f64, max_x: f64, max_y: f64) -> Self {
        assert!(min_x <= max_x && min_y <= max_y, "degenerate rectangle");
        Rect {
            min_x,
            min_y,
            max_x,
            max_y,
        }
    }

    /// A square of side `side` with its lower-left corner at the origin.
    pub fn square(side: f64) -> Self {
        Rect::new(0.0, 0.0, side, side)
    }

    /// Width of the rectangle in metres.
    pub fn width(&self) -> f64 {
        self.max_x - self.min_x
    }

    /// Height of the rectangle in metres.
    pub fn height(&self) -> f64 {
        self.max_y - self.min_y
    }

    /// Centre point of the rectangle.
    pub fn center(&self) -> Point {
        Point::new((self.min_x + self.max_x) / 2.0, (self.min_y + self.max_y) / 2.0)
    }

    /// True if the point lies inside the rectangle (inclusive of the border).
    pub fn contains(&self, p: Point) -> bool {
        p.x >= self.min_x && p.x <= self.max_x && p.y >= self.min_y && p.y <= self.max_y
    }

    /// Clamps a point to the rectangle.
    pub fn clamp(&self, p: Point) -> Point {
        Point::new(p.x.clamp(self.min_x, self.max_x), p.y.clamp(self.min_y, self.max_y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn distance_is_euclidean() {
        let a = Point::new(1.0, 1.0);
        let b = Point::new(4.0, 5.0);
        assert!((a.distance(b) - 5.0).abs() < 1e-12);
        assert!((a.distance_sq(b) - 25.0).abs() < 1e-12);
    }

    #[test]
    fn distance_is_symmetric() {
        let a = Point::new(-2.5, 7.0);
        let b = Point::new(3.0, -1.0);
        assert!((a.distance(b) - b.distance(a)).abs() < 1e-12);
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Point::new(0.0, 0.0);
        let b = Point::new(10.0, 20.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let m = a.lerp(b, 0.5);
        assert_eq!(m, Point::new(5.0, 10.0));
    }

    #[test]
    fn rect_contains_and_clamp() {
        let r = Rect::new(0.0, 0.0, 10.0, 4.0);
        assert!(r.contains(Point::new(0.0, 0.0)));
        assert!(r.contains(Point::new(10.0, 4.0)));
        assert!(!r.contains(Point::new(10.1, 4.0)));
        assert_eq!(r.clamp(Point::new(12.0, -3.0)), Point::new(10.0, 0.0));
        assert_eq!(r.center(), Point::new(5.0, 2.0));
        assert_eq!(r.width(), 10.0);
        assert_eq!(r.height(), 4.0);
    }

    #[test]
    fn square_helper() {
        let r = Rect::square(50.0);
        assert_eq!(r.width(), 50.0);
        assert_eq!(r.height(), 50.0);
        assert!(r.contains(Point::new(25.0, 25.0)));
    }

    #[test]
    #[should_panic]
    fn degenerate_rect_panics() {
        let _ = Rect::new(5.0, 0.0, 0.0, 1.0);
    }

    #[test]
    fn offset_moves_point() {
        assert_eq!(Point::new(1.0, 2.0).offset(3.0, -1.0), Point::new(4.0, 1.0));
    }
}
