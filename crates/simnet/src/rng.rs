//! Deterministic random number generation.
//!
//! Every stochastic decision in the simulator (connection setup latency,
//! connection faults, inquiry misses, mobility waypoints, quality noise) is
//! drawn from a [`SimRng`] derived from the world seed, so a run is fully
//! reproducible from `(seed, scenario)`.
//!
//! The generator is a self-contained xoshiro256++ seeded through a
//! SplitMix64 expansion — no external dependency, identical streams on every
//! platform.

/// Types that [`SimRng::range`] can draw uniformly.
///
/// Implemented for the integer and floating-point types the simulator uses;
/// the trait is sealed in practice by being driven only through
/// [`SampleRange`].
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a value in `[low, high]` (both ends inclusive) for integer
    /// types. Floating-point sampling is always half-open `[low, high)` —
    /// see the `f64` impl.
    fn sample_inclusive(rng: &mut SimRng, low: Self, high: Self) -> Self;
    /// The largest value strictly below `self` (integer predecessor; for
    /// floats the half-open upper bound is handled in the float impl
    /// directly, so this is identity there).
    fn half_open_high(self) -> Self;
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_inclusive(rng: &mut SimRng, low: Self, high: Self) -> Self {
                debug_assert!(low <= high);
                let span = (high as u64).wrapping_sub(low as u64).wrapping_add(1);
                if span == 0 {
                    // Full 64-bit span.
                    return rng.next_u64() as Self;
                }
                // Multiply-shift mapping of a 64-bit draw onto the span; the
                // bias is < 2^-64 per draw, far below anything the simulator
                // can observe.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                low.wrapping_add(hi as Self)
            }
            fn half_open_high(self) -> Self {
                self - 1
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i32, i64);

impl SampleUniform for f64 {
    fn sample_inclusive(rng: &mut SimRng, low: Self, high: Self) -> Self {
        // Uniform in [low, high) regardless of the range syntax used: the
        // closed upper end of `a..=b` is a measure-zero event no simulator
        // model depends on, so float sampling is uniformly half-open.
        low + (high - low) * rng.unit()
    }
    fn half_open_high(self) -> Self {
        self
    }
}

/// Ranges accepted by [`SimRng::range`]: `a..b` and `a..=b`.
pub trait SampleRange<T: SampleUniform> {
    /// Inclusive `(low, high)` bounds of the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn bounds_inclusive(self) -> (T, T);
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    fn bounds_inclusive(self) -> (T, T) {
        assert!(self.start < self.end, "cannot sample an empty range");
        (self.start, self.end.half_open_high())
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    fn bounds_inclusive(self) -> (T, T) {
        let (start, end) = self.into_inner();
        assert!(start <= end, "cannot sample an empty range");
        (start, end)
    }
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A seeded random number generator with a few distribution helpers used by
/// the radio and mobility models.
///
/// ```
/// use simnet::rng::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.range(0u32..100), b.range(0u32..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    state: [u64; 4],
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        SimRng {
            state: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Derives an independent child generator from this one and a stream
    /// label. Children with different labels produce uncorrelated streams;
    /// deriving the same label twice from generators in the same state gives
    /// the same stream.
    pub fn derive(&self, label: u64) -> SimRng {
        // Mix the label with a SplitMix64-style finalizer so neighbouring
        // labels yield unrelated seeds.
        let mut z = label.wrapping_add(0x9E37_79B9_7F4A_7C15) ^ self.base_seed_hint();
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    fn base_seed_hint(&self) -> u64 {
        // Peek one draw from a clone to obtain a state-dependent hint without
        // disturbing `self`.
        let mut probe = self.clone();
        probe.next_u64()
    }

    /// Draws a value uniformly from the given range (`a..b` or `a..=b`).
    ///
    /// Integer ranges honour their bounds exactly; floating-point ranges are
    /// always sampled half-open `[low, high)`, even for `a..=b`.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        let (low, high) = range.bounds_inclusive();
        T::sample_inclusive(self, low, high)
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        // 53 random mantissa bits.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.unit() < p
        }
    }

    /// Draws from a uniform distribution over `[min, max]` seconds expressed
    /// as `f64`, useful for latency models.
    pub fn uniform_f64(&mut self, min: f64, max: f64) -> f64 {
        if max <= min {
            return min;
        }
        min + (max - min) * self.unit()
    }

    /// Draws a sample from an approximately normal distribution using the
    /// sum of uniforms (Irwin–Hall with 12 terms), which is accurate enough
    /// for link-quality noise and avoids an extra dependency.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.unit();
        }
        mean + (acc - 6.0) * std_dev
    }

    /// Draws from an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.unit().max(f64::EPSILON);
        -mean * u.ln()
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty collection");
        self.range(0..len)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.range(0..=i);
            items.swap(i, j);
        }
    }

    /// Draws a raw 64-bit value (xoshiro256++).
    pub fn next_u64(&mut self) -> u64 {
        let [s0, s1, s2, s3] = self.state;
        let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
        let t = s1 << 17;
        let mut s2 = s2 ^ s0;
        let mut s3 = s3 ^ s1;
        let s1 = s1 ^ s2;
        let s0 = s0 ^ s3;
        s2 ^= t;
        s3 = s3.rotate_left(45);
        self.state = [s0, s1, s2, s3];
        result
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially independent");
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let root = SimRng::new(99);
        let mut c1 = root.derive(1);
        let mut c1b = root.derive(1);
        let mut c2 = root.derive(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_probability_roughly_respected() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform_f64(1.5, 9.0);
            assert!((1.5..9.0).contains(&v));
        }
        assert_eq!(r.uniform_f64(4.0, 4.0), 4.0);
        assert_eq!(r.uniform_f64(4.0, 2.0), 4.0);
    }

    #[test]
    fn range_covers_integer_bounds() {
        let mut r = SimRng::new(13);
        let mut seen_low = false;
        let mut seen_high = false;
        for _ in 0..2000 {
            let v = r.range(0u32..4);
            assert!(v < 4);
            seen_low |= v == 0;
            seen_high |= v == 3;
        }
        assert!(seen_low && seen_high, "both ends of 0..4 should be drawn");
        for _ in 0..200 {
            let v = r.range(5u64..=5);
            assert_eq!(v, 5);
        }
    }

    #[test]
    fn gaussian_mean_and_spread() {
        let mut r = SimRng::new(21);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(77);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn index_empty_panics() {
        let mut r = SimRng::new(1);
        let _ = r.index(0);
    }
}
