//! Deterministic random number generation.
//!
//! Every stochastic decision in the simulator (connection setup latency,
//! connection faults, inquiry misses, mobility waypoints, quality noise) is
//! drawn from a [`SimRng`] derived from the world seed, so a run is fully
//! reproducible from `(seed, scenario)`.

use rand::distributions::uniform::{SampleRange, SampleUniform};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A seeded random number generator with a few distribution helpers used by
/// the radio and mobility models.
///
/// ```
/// use simnet::rng::SimRng;
///
/// let mut a = SimRng::new(42);
/// let mut b = SimRng::new(42);
/// assert_eq!(a.range(0u32..100), b.range(0u32..100));
/// ```
#[derive(Debug, Clone)]
pub struct SimRng {
    inner: StdRng,
}

impl SimRng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        SimRng {
            inner: StdRng::seed_from_u64(seed),
        }
    }

    /// Derives an independent child generator from this one and a stream
    /// label. Children with different labels produce uncorrelated streams;
    /// deriving the same label twice from generators in the same state gives
    /// the same stream.
    pub fn derive(&self, label: u64) -> SimRng {
        // Mix the label with a SplitMix64-style finalizer so neighbouring
        // labels yield unrelated seeds.
        let mut z = label.wrapping_add(0x9E37_79B9_7F4A_7C15) ^ self.base_seed_hint();
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        SimRng::new(z)
    }

    fn base_seed_hint(&self) -> u64 {
        // StdRng does not expose its seed; clone and draw one value to obtain
        // a state-dependent hint without disturbing `self`.
        let mut probe = self.inner.clone();
        probe.gen::<u64>()
    }

    /// Draws a value uniformly from the given range.
    pub fn range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        self.inner.gen_range(range)
    }

    /// Draws a uniform value in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Returns true with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.inner.gen::<f64>() < p
        }
    }

    /// Draws from a uniform distribution over `[min, max]` seconds expressed
    /// as `f64`, useful for latency models.
    pub fn uniform_f64(&mut self, min: f64, max: f64) -> f64 {
        if max <= min {
            return min;
        }
        self.inner.gen_range(min..max)
    }

    /// Draws a sample from an approximately normal distribution using the
    /// sum of uniforms (Irwin–Hall with 12 terms), which is accurate enough
    /// for link-quality noise and avoids an extra dependency.
    pub fn gaussian(&mut self, mean: f64, std_dev: f64) -> f64 {
        let mut acc = 0.0;
        for _ in 0..12 {
            acc += self.inner.gen::<f64>();
        }
        mean + (acc - 6.0) * std_dev
    }

    /// Draws from an exponential distribution with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        let u: f64 = self.inner.gen_range(f64::EPSILON..1.0);
        -mean * u.ln()
    }

    /// Picks a uniformly random element index for a slice of length `len`.
    ///
    /// # Panics
    ///
    /// Panics if `len` is zero.
    pub fn index(&mut self, len: usize) -> usize {
        assert!(len > 0, "cannot pick from an empty collection");
        self.inner.gen_range(0..len)
    }

    /// Shuffles a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        if items.len() < 2 {
            return;
        }
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Draws a raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.inner.gen()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..16).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2, "streams should be essentially independent");
    }

    #[test]
    fn derive_is_deterministic_and_label_sensitive() {
        let root = SimRng::new(99);
        let mut c1 = root.derive(1);
        let mut c1b = root.derive(1);
        let mut c2 = root.derive(2);
        assert_eq!(c1.next_u64(), c1b.next_u64());
        assert_ne!(c1.next_u64(), c2.next_u64());
    }

    #[test]
    fn chance_extremes() {
        let mut r = SimRng::new(5);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
        assert!(!r.chance(-1.0));
        assert!(r.chance(2.0));
    }

    #[test]
    fn chance_probability_roughly_respected() {
        let mut r = SimRng::new(11);
        let hits = (0..10_000).filter(|_| r.chance(0.3)).count();
        assert!((2_700..3_300).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniform_respects_bounds() {
        let mut r = SimRng::new(3);
        for _ in 0..1000 {
            let v = r.uniform_f64(1.5, 9.0);
            assert!((1.5..9.0).contains(&v));
        }
        assert_eq!(r.uniform_f64(4.0, 4.0), 4.0);
        assert_eq!(r.uniform_f64(4.0, 2.0), 4.0);
    }

    #[test]
    fn gaussian_mean_and_spread() {
        let mut r = SimRng::new(21);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| r.gaussian(10.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 10.0).abs() < 0.1, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.15, "std {}", var.sqrt());
    }

    #[test]
    fn exponential_mean() {
        let mut r = SimRng::new(77);
        let n = 20_000;
        let mean = (0..n).map(|_| r.exponential(5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.25, "mean {mean}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(8);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic]
    fn index_empty_panics() {
        let mut r = SimRng::new(1);
        let _ = r.index(0);
    }
}
