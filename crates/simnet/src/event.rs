//! The discrete-event scheduler.
//!
//! A simple binary-heap scheduler with a monotonically increasing sequence
//! number as a tie-breaker, so that events scheduled for the same instant are
//! delivered in the order they were scheduled. This keeps runs deterministic
//! regardless of heap internals.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

use crate::time::SimTime;

/// An entry in the scheduler.
#[derive(Debug, Clone)]
struct Scheduled<T> {
    time: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}

impl<T> Eq for Scheduled<T> {}

impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event is popped
        // first, breaking ties by insertion order.
        other.time.cmp(&self.time).then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A deterministic future-event list.
///
/// ```
/// use simnet::event::Scheduler;
/// use simnet::time::SimTime;
///
/// let mut s = Scheduler::new();
/// s.schedule(SimTime::from_secs(2), "later");
/// s.schedule(SimTime::from_secs(1), "sooner");
/// assert_eq!(s.pop().unwrap().1, "sooner");
/// assert_eq!(s.pop().unwrap().1, "later");
/// assert!(s.is_empty());
/// ```
#[derive(Debug, Clone)]
pub struct Scheduler<T> {
    heap: BinaryHeap<Scheduled<T>>,
    next_seq: u64,
}

impl<T> Default for Scheduler<T> {
    fn default() -> Self {
        Scheduler::new()
    }
}

impl<T> Scheduler<T> {
    /// Creates an empty scheduler.
    pub fn new() -> Self {
        Scheduler {
            heap: BinaryHeap::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` for delivery at `time`. Events at equal times are
    /// delivered in scheduling order.
    pub fn schedule(&mut self, time: SimTime, payload: T) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Scheduled { time, seq, payload });
    }

    /// The time of the next event, if any.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.time)
    }

    /// Removes and returns the next `(time, payload)` pair.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.time, s.payload))
    }

    /// Removes and returns the next event only if it is due at or before
    /// `deadline`.
    pub fn pop_due(&mut self, deadline: SimTime) -> Option<(SimTime, T)> {
        match self.peek_time() {
            Some(t) if t <= deadline => self.pop(),
            _ => None,
        }
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// True if there are no pending events.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops every pending event.
    pub fn clear(&mut self) {
        self.heap.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    #[test]
    fn pops_in_time_order() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(5), 5);
        s.schedule(SimTime::from_secs(1), 1);
        s.schedule(SimTime::from_secs(3), 3);
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, vec![1, 3, 5]);
    }

    #[test]
    fn equal_times_preserve_insertion_order() {
        let mut s = Scheduler::new();
        let t = SimTime::from_secs(7);
        for i in 0..100 {
            s.schedule(t, i);
        }
        let order: Vec<i32> = std::iter::from_fn(|| s.pop().map(|(_, p)| p)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }

    #[test]
    fn pop_due_respects_deadline() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(10), "late");
        s.schedule(SimTime::from_secs(1), "early");
        assert_eq!(s.pop_due(SimTime::from_secs(5)).unwrap().1, "early");
        assert!(s.pop_due(SimTime::from_secs(5)).is_none());
        assert_eq!(s.len(), 1);
        assert_eq!(s.pop_due(SimTime::from_secs(10)).unwrap().1, "late");
    }

    #[test]
    fn peek_and_clear() {
        let mut s = Scheduler::new();
        assert!(s.peek_time().is_none());
        s.schedule(SimTime::from_secs(2), ());
        s.schedule(SimTime::from_secs(2) + SimDuration::from_millis(1), ());
        assert_eq!(s.peek_time(), Some(SimTime::from_secs(2)));
        assert_eq!(s.len(), 2);
        s.clear();
        assert!(s.is_empty());
    }

    #[test]
    fn interleaved_schedule_and_pop_stays_ordered() {
        let mut s = Scheduler::new();
        s.schedule(SimTime::from_secs(4), 4);
        s.schedule(SimTime::from_secs(2), 2);
        assert_eq!(s.pop().unwrap().1, 2);
        s.schedule(SimTime::from_secs(1), 1);
        s.schedule(SimTime::from_secs(3), 3);
        assert_eq!(s.pop().unwrap().1, 1);
        assert_eq!(s.pop().unwrap().1, 3);
        assert_eq!(s.pop().unwrap().1, 4);
    }
}
