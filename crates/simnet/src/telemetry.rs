//! Live telemetry plane: virtual-clock time series and per-phase profiling.
//!
//! The experiment reports summarise a run *after* it ends; this module is the
//! instrument for watching one *while* it runs. It provides two independent
//! tools, both **off by default** and both drawing **no randomness** — an
//! instrumented world replays byte-identically to an uninstrumented one:
//!
//! * [`Telemetry`] — a time-series recorder on the **virtual** clock.
//!   Counters, gauges and fixed-bucket histograms are keyed by
//!   `(subsystem, name, optional label)`; at a configurable virtual-time
//!   interval the engine snapshots every series into a [`Frame`] held in a
//!   bounded in-memory ring. Frames export as JSON lines ([`Telemetry::to_jsonl`]),
//!   roll up into a markdown table ([`Telemetry::rollup`]) and hash into a
//!   determinism digest ([`Telemetry::digest`]). A frame callback
//!   ([`Telemetry::set_on_frame`]) feeds live `repro watch` streaming.
//! * [`Profiler`] — **wall**-clock timers around the event loop's hot phases
//!   ([`Phase`]), answering "where did the microseconds go" at 10k+ nodes.
//!   Wall times are measurement output only: they never feed back into the
//!   simulation or its reports, so determinism is untouched.
//!
//! Both engines carry the hooks: the sequential [`World`](crate::world::World)
//! samples when the event loop crosses an interval boundary, the sharded
//! [`ShardedWorld`](crate::world::shard::ShardedWorld) samples at window
//! barriers by folding shard-local state in canonical order — so with
//! telemetry on, the recorded series are byte-identical at any shard count.

use std::cell::Cell;
use std::collections::{BTreeMap, VecDeque};
use std::fmt::Write as _;
use std::time::Instant;

use crate::time::{SimDuration, SimTime};

/// Default virtual-time sampling interval (one simulated second).
pub const DEFAULT_SAMPLE_INTERVAL: SimDuration = SimDuration::from_secs(1);

/// Default bound on the in-memory frame ring.
pub const DEFAULT_RING_CAPACITY: usize = 4096;

/// Upper bounds (bytes) of the payload-size histogram buckets used by both
/// engines; the final implicit bucket is `+Inf`.
pub const PAYLOAD_SIZE_BOUNDS: &[u64] = &[16, 64, 256, 1024, 4096, 16384];

/// Configuration of the [`Telemetry`] recorder.
#[derive(Debug, Clone)]
pub struct TelemetryConfig {
    /// Virtual-time spacing of sampled frames.
    pub sample_interval: SimDuration,
    /// Maximum frames retained; the oldest frame is dropped (and counted in
    /// [`Telemetry::dropped_frames`]) when the ring is full.
    pub ring_capacity: usize,
    /// Record per-shard `shard/*` series (load, occupancy, imbalance,
    /// rebalances) in the sharded world. Off by default because these series
    /// are inherently shard-layout-dependent: leaving them out keeps every
    /// recorded capture byte-identical at any `--shards` count.
    pub shard_series: bool,
}

impl Default for TelemetryConfig {
    fn default() -> Self {
        TelemetryConfig {
            sample_interval: DEFAULT_SAMPLE_INTERVAL,
            ring_capacity: DEFAULT_RING_CAPACITY,
            shard_series: false,
        }
    }
}

impl TelemetryConfig {
    /// A configuration sampling every `interval` of virtual time.
    pub fn every(interval: SimDuration) -> Self {
        TelemetryConfig {
            sample_interval: interval.max(SimDuration::from_micros(1)),
            ..TelemetryConfig::default()
        }
    }

    /// The same configuration with per-shard `shard/*` series switched on.
    pub fn with_shard_series(mut self) -> Self {
        self.shard_series = true;
        self
    }
}

/// Identity of one time series: subsystem, metric name, optional label
/// (a node name, radio technology, …).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct SeriesKey {
    /// Subsystem owning the series (`"world"`, `"resilience"`, …).
    pub subsystem: &'static str,
    /// Metric name within the subsystem.
    pub name: &'static str,
    /// Optional discriminating label (e.g. a radio technology).
    pub label: Option<String>,
}

impl SeriesKey {
    fn new(subsystem: &'static str, name: &'static str, label: Option<&str>) -> Self {
        SeriesKey {
            subsystem,
            name,
            label: label.map(str::to_string),
        }
    }

    /// `subsystem/name` (plus `{label}` when present), as printed in tables.
    pub fn display(&self) -> String {
        match &self.label {
            Some(l) => format!("{}/{}{{{l}}}", self.subsystem, self.name),
            None => format!("{}/{}", self.subsystem, self.name),
        }
    }
}

/// A fixed-bucket histogram: counts per upper bound plus an overflow bucket,
/// with total count and sum for mean/rate derivation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    bounds: &'static [u64],
    counts: Vec<u64>,
    count: u64,
    sum: u64,
}

impl Histogram {
    /// An empty histogram over the given ascending upper bounds.
    pub fn new(bounds: &'static [u64]) -> Self {
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            count: 0,
            sum: 0,
        }
    }

    /// Records one observation.
    pub fn observe(&mut self, value: u64) {
        let idx = self.bounds.partition_point(|&b| value > b);
        self.counts[idx] += 1;
        self.count += 1;
        self.sum += value;
    }

    /// Adds every bucket of `other` into this histogram (bounds must match).
    pub fn merge(&mut self, other: &Histogram) {
        debug_assert_eq!(self.bounds, other.bounds, "histogram bounds must match to merge");
        for (mine, theirs) in self.counts.iter_mut().zip(&other.counts) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum += other.sum;
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of every observed value.
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// The configured upper bounds.
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Per-bucket counts; the last entry is the overflow bucket.
    pub fn bucket_counts(&self) -> &[u64] {
        &self.counts
    }
}

/// Current value of one series.
#[derive(Debug, Clone, PartialEq)]
pub enum SeriesValue {
    /// Monotone cumulative count.
    Counter(u64),
    /// Instantaneous level.
    Gauge(f64),
    /// Distribution of observed values.
    Histogram(Histogram),
}

impl SeriesValue {
    fn kind(&self) -> &'static str {
        match self {
            SeriesValue::Counter(_) => "counter",
            SeriesValue::Gauge(_) => "gauge",
            SeriesValue::Histogram(_) => "histogram",
        }
    }

    /// The value as a scalar: counters and histogram counts as `f64`, gauges
    /// verbatim.
    pub fn as_f64(&self) -> f64 {
        match self {
            SeriesValue::Counter(v) => *v as f64,
            SeriesValue::Gauge(v) => *v,
            SeriesValue::Histogram(h) => h.count as f64,
        }
    }
}

/// One sampled snapshot: every series' value at a virtual-time boundary.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    /// The virtual instant the frame belongs to (an interval boundary).
    pub at: SimTime,
    samples: Vec<(SeriesKey, SeriesValue)>,
}

impl Frame {
    /// The sampled series in ascending key order.
    pub fn samples(&self) -> &[(SeriesKey, SeriesValue)] {
        &self.samples
    }

    /// Scalar value of the unlabelled series `subsystem/name`, if sampled.
    pub fn get(&self, subsystem: &str, name: &str) -> Option<f64> {
        self.samples
            .iter()
            .find(|(k, _)| k.subsystem == subsystem && k.name == name && k.label.is_none())
            .map(|(_, v)| v.as_f64())
    }
}

/// A frame callback, invoked with each completed sample ([`Telemetry::set_on_frame`]).
pub type FrameSink = Box<dyn FnMut(&Frame)>;

/// The virtual-clock time-series recorder. See the module docs for the model.
#[derive(Default)]
pub struct Telemetry {
    config: TelemetryConfig,
    series: BTreeMap<SeriesKey, SeriesValue>,
    frames: VecDeque<Frame>,
    next_sample: Option<SimTime>,
    dropped: u64,
    on_frame: Option<FrameSink>,
}

impl std::fmt::Debug for Telemetry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Telemetry")
            .field("config", &self.config)
            .field("series", &self.series.len())
            .field("frames", &self.frames.len())
            .field("dropped", &self.dropped)
            .finish()
    }
}

impl Telemetry {
    /// Creates an empty recorder; the first frame is due one sample interval
    /// after the virtual epoch.
    pub fn new(config: TelemetryConfig) -> Self {
        let first = SimTime::ZERO + config.sample_interval;
        Telemetry {
            config,
            series: BTreeMap::new(),
            frames: VecDeque::new(),
            next_sample: Some(first),
            dropped: 0,
            on_frame: None,
        }
    }

    /// The configuration in force.
    pub fn config(&self) -> &TelemetryConfig {
        &self.config
    }

    /// Sets a counter to an absolute cumulative value (the engines mirror
    /// their already-maintained counters at sample time).
    pub fn set_counter(&mut self, subsystem: &'static str, name: &'static str, label: Option<&str>, value: u64) {
        self.series
            .insert(SeriesKey::new(subsystem, name, label), SeriesValue::Counter(value));
    }

    /// Adds a delta to a counter, creating it at zero first.
    pub fn add_counter(&mut self, subsystem: &'static str, name: &'static str, label: Option<&str>, delta: u64) {
        let entry = self
            .series
            .entry(SeriesKey::new(subsystem, name, label))
            .or_insert(SeriesValue::Counter(0));
        if let SeriesValue::Counter(v) = entry {
            *v += delta;
        }
    }

    /// Sets a gauge to an instantaneous level.
    pub fn set_gauge(&mut self, subsystem: &'static str, name: &'static str, label: Option<&str>, value: f64) {
        self.series
            .insert(SeriesKey::new(subsystem, name, label), SeriesValue::Gauge(value));
    }

    /// Records one observation into a fixed-bucket histogram series.
    pub fn observe(
        &mut self,
        subsystem: &'static str,
        name: &'static str,
        label: Option<&str>,
        bounds: &'static [u64],
        value: u64,
    ) {
        let entry = self
            .series
            .entry(SeriesKey::new(subsystem, name, label))
            .or_insert_with(|| SeriesValue::Histogram(Histogram::new(bounds)));
        if let SeriesValue::Histogram(h) = entry {
            h.observe(value);
        }
    }

    /// Replaces a histogram series wholesale (the sharded engine folds its
    /// per-shard histograms into one at each barrier sample).
    pub fn set_histogram(&mut self, subsystem: &'static str, name: &'static str, label: Option<&str>, hist: Histogram) {
        self.series
            .insert(SeriesKey::new(subsystem, name, label), SeriesValue::Histogram(hist));
    }

    /// True when virtual time has crossed the next sample boundary, i.e. a
    /// call to [`Telemetry::sample`] would emit a frame.
    pub fn due(&self, now: SimTime) -> bool {
        self.next_sample.map(|at| now >= at).unwrap_or(false)
    }

    /// Emits a frame if `now` has crossed the next sample boundary.
    ///
    /// The frame is stamped at the **latest boundary crossed** (boundaries are
    /// multiples of the sample interval), so frame times depend only on the
    /// interval and the instants the engine checks — never on wall time. At
    /// most one frame is emitted per call; skipped boundaries (an event-free
    /// stretch, a coarse barrier window) collapse into the latest one.
    pub fn sample(&mut self, now: SimTime) {
        let Some(next) = self.next_sample else { return };
        if now < next {
            return;
        }
        let interval = self.config.sample_interval;
        let skipped = now.saturating_since(next).as_micros() / interval.as_micros().max(1);
        let at = next + SimDuration::from_micros(skipped * interval.as_micros());
        self.next_sample = Some(at + interval);
        let frame = Frame {
            at,
            samples: self.series.iter().map(|(k, v)| (k.clone(), v.clone())).collect(),
        };
        if let Some(cb) = self.on_frame.as_mut() {
            cb(&frame);
        }
        if self.frames.len() >= self.config.ring_capacity.max(1) {
            self.frames.pop_front();
            self.dropped += 1;
        }
        self.frames.push_back(frame);
    }

    /// Installs a callback invoked on every emitted frame (live `watch`
    /// streaming). The callback observes frames; it cannot alter them.
    pub fn set_on_frame(&mut self, cb: FrameSink) {
        self.on_frame = Some(cb);
    }

    /// The retained frames, oldest first.
    pub fn frames(&self) -> impl Iterator<Item = &Frame> {
        self.frames.iter()
    }

    /// Number of retained frames.
    pub fn frame_count(&self) -> usize {
        self.frames.len()
    }

    /// Frames evicted because the ring was full.
    pub fn dropped_frames(&self) -> u64 {
        self.dropped
    }

    /// The most recent frame, if any was emitted.
    pub fn latest(&self) -> Option<&Frame> {
        self.frames.back()
    }

    /// Serialises every retained frame as JSON lines, one line per series
    /// sample, in (time, key) order. The encoding is hand-rolled (the
    /// workspace builds offline; `serde` is a stub) and fully deterministic.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for frame in &self.frames {
            for (key, value) in &frame.samples {
                let _ = write!(
                    out,
                    "{{\"t_us\":{},\"subsystem\":\"{}\",\"name\":\"{}\"",
                    frame.at.as_micros(),
                    key.subsystem,
                    key.name
                );
                if let Some(label) = &key.label {
                    let _ = write!(out, ",\"label\":\"{label}\"");
                }
                let _ = write!(out, ",\"kind\":\"{}\"", value.kind());
                match value {
                    SeriesValue::Counter(v) => {
                        let _ = write!(out, ",\"value\":{v}");
                    }
                    SeriesValue::Gauge(v) => {
                        let _ = write!(out, ",\"value\":{v}");
                    }
                    SeriesValue::Histogram(h) => {
                        let _ = write!(out, ",\"count\":{},\"sum\":{},\"counts\":[", h.count, h.sum);
                        for (i, c) in h.counts.iter().enumerate() {
                            let _ = write!(out, "{}{c}", if i == 0 { "" } else { "," });
                        }
                        out.push(']');
                    }
                }
                out.push_str("}\n");
            }
        }
        out
    }

    /// FNV-1a hash of the JSONL serialisation — the byte-identity digest the
    /// determinism and shard-invariance tests compare.
    pub fn digest(&self) -> u64 {
        fnv1a(self.to_jsonl().as_bytes())
    }

    /// End-of-run roll-up: one row per series with its latest value, plus the
    /// frame/drop bookkeeping, as a markdown table.
    pub fn rollup(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} frame(s) sampled every {}s of virtual time ({} dropped by the ring)",
            self.frames.len(),
            self.config.sample_interval.as_secs_f64(),
            self.dropped
        );
        let _ = writeln!(out);
        let _ = writeln!(out, "| series | kind | last value |");
        let _ = writeln!(out, "|---|---|---|");
        for (key, value) in &self.series {
            let rendered = match value {
                SeriesValue::Counter(v) => v.to_string(),
                SeriesValue::Gauge(v) => format!("{v:.2}"),
                SeriesValue::Histogram(h) => format!(
                    "n={} sum={} mean={:.1}",
                    h.count,
                    h.sum,
                    if h.count == 0 {
                        0.0
                    } else {
                        h.sum as f64 / h.count as f64
                    }
                ),
            };
            let _ = writeln!(out, "| {} | {} | {rendered} |", key.display(), value.kind());
        }
        out
    }
}

/// FNV-1a over a byte slice (the digest primitive shared with the E17
/// invariance checks).
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

// ---------------------------------------------------------------------------
// Per-phase wall-clock profiling
// ---------------------------------------------------------------------------

/// The event-loop phases the profiler attributes wall time to. The first
/// nine cover the sequential engine's event kinds; the last three are the
/// sharded engine's coordinator work.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Phase {
    /// Agent start/restart callbacks.
    AgentStart,
    /// Agent timer callbacks.
    Timers,
    /// Inquiry completion: grid query, candidate filtering, hit delivery.
    Discovery,
    /// Spatial-grid refresh (sequential engine: a sub-span inside
    /// [`Phase::Discovery`]; sharded engine: the per-window rebuild).
    GridRefresh,
    /// Connection-attempt resolution (incl. handover re-attaches).
    Connect,
    /// In-flight message delivery.
    Delivery,
    /// Periodic link coverage checks.
    LinkCheck,
    /// Graceful disconnect processing.
    Disconnect,
    /// Fault-schedule processing (crashes, restarts, radio outages).
    Faults,
    /// Sharded engine: rebuilding the global node snapshot.
    Snapshot,
    /// Sharded engine: the parallel shard windows (wall time of the scope).
    ShardWindows,
    /// Sharded engine: window barrier — cross-shard message merge and fold.
    BarrierMerge,
}

impl Phase {
    /// Every phase, in display order.
    pub const ALL: [Phase; 12] = [
        Phase::AgentStart,
        Phase::Timers,
        Phase::Discovery,
        Phase::GridRefresh,
        Phase::Connect,
        Phase::Delivery,
        Phase::LinkCheck,
        Phase::Disconnect,
        Phase::Faults,
        Phase::Snapshot,
        Phase::ShardWindows,
        Phase::BarrierMerge,
    ];

    /// Stable display name.
    pub fn name(self) -> &'static str {
        match self {
            Phase::AgentStart => "agent-start",
            Phase::Timers => "timers",
            Phase::Discovery => "discovery",
            Phase::GridRefresh => "grid-refresh",
            Phase::Connect => "connect",
            Phase::Delivery => "delivery",
            Phase::LinkCheck => "link-check",
            Phase::Disconnect => "disconnect",
            Phase::Faults => "faults",
            Phase::Snapshot => "snapshot",
            Phase::ShardWindows => "shard-windows",
            Phase::BarrierMerge => "barrier-merge",
        }
    }

    fn idx(self) -> usize {
        self as usize
    }
}

#[derive(Debug, Default)]
struct PhaseCell {
    calls: Cell<u64>,
    nanos: Cell<u64>,
}

/// Wall-clock time per event-loop phase. Interior-mutable (`Cell`) so
/// read-only hot paths can record through `&self`; plain data, `Send`, and
/// mergeable so every shard can carry its own and fold at the end.
///
/// Wall times are diagnostics only: they are never written into reports,
/// metrics or telemetry series, so enabling the profiler cannot perturb a
/// run's results.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    cells: [PhaseCell; Phase::ALL.len()],
}

impl Profiler {
    /// A disabled profiler ([`Profiler::begin`] returns `None`, recording is
    /// a no-op).
    pub fn disabled() -> Self {
        Profiler::default()
    }

    /// An enabled profiler.
    pub fn enabled() -> Self {
        Profiler {
            enabled: true,
            ..Profiler::default()
        }
    }

    /// Whether this profiler records anything.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Starts timing a span; `None` (free) when disabled.
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Ends a span started with [`Profiler::begin`], attributing it to `phase`.
    pub fn end(&self, phase: Phase, started: Option<Instant>) {
        if let Some(t0) = started {
            let cell = &self.cells[phase.idx()];
            cell.calls.set(cell.calls.get() + 1);
            cell.nanos.set(cell.nanos.get() + t0.elapsed().as_nanos() as u64);
        }
    }

    /// Adds pre-measured spans (used when folding shard-local profilers).
    pub fn add(&self, phase: Phase, calls: u64, nanos: u64) {
        let cell = &self.cells[phase.idx()];
        cell.calls.set(cell.calls.get() + calls);
        cell.nanos.set(cell.nanos.get() + nanos);
    }

    /// Folds every phase of `other` into this profiler.
    pub fn merge(&self, other: &Profiler) {
        for phase in Phase::ALL {
            let cell = &other.cells[phase.idx()];
            self.add(phase, cell.calls.get(), cell.nanos.get());
        }
    }

    /// Spans recorded for a phase.
    pub fn calls(&self, phase: Phase) -> u64 {
        self.cells[phase.idx()].calls.get()
    }

    /// Wall nanoseconds recorded for a phase.
    pub fn nanos(&self, phase: Phase) -> u64 {
        self.cells[phase.idx()].nanos.get()
    }

    /// The per-subsystem breakdown as a markdown table, phases sorted by
    /// recorded wall time. `sim_elapsed` scales the per-virtual-second cost
    /// column; pass [`SimDuration::ZERO`] to omit it.
    pub fn report(&self, sim_elapsed: SimDuration) -> String {
        let mut rows: Vec<(Phase, u64, u64)> = Phase::ALL
            .iter()
            .map(|&p| (p, self.calls(p), self.nanos(p)))
            .filter(|&(_, calls, _)| calls > 0)
            .collect();
        rows.sort_by(|a, b| b.2.cmp(&a.2).then_with(|| a.0.idx().cmp(&b.0.idx())));
        // The grid refresh is a sub-span inside discovery/link handling in
        // the sequential engine, and the shard-window span is the scope wall
        // that encloses the per-event phases in the sharded engine; neither
        // may be double-counted in the total.
        let total: u64 = rows
            .iter()
            .filter(|(p, ..)| !matches!(p, Phase::GridRefresh | Phase::ShardWindows))
            .map(|(_, _, n)| n)
            .sum();
        let mut out = String::new();
        let _ = writeln!(out, "| phase | calls | wall (ms) | ns/call | share |");
        let _ = writeln!(out, "|---|---|---|---|---|");
        for (phase, calls, nanos) in &rows {
            let share = if *phase == Phase::GridRefresh {
                "(sub-span)".to_string()
            } else if *phase == Phase::ShardWindows {
                "(scope wall)".to_string()
            } else if total > 0 {
                format!("{:.1}%", *nanos as f64 * 100.0 / total as f64)
            } else {
                "-".to_string()
            };
            let _ = writeln!(
                out,
                "| {} | {calls} | {:.2} | {} | {share} |",
                phase.name(),
                *nanos as f64 / 1e6,
                nanos / (*calls).max(1)
            );
        }
        let _ = writeln!(
            out,
            "\ntotal accounted: {:.2} ms{}",
            total as f64 / 1e6,
            if sim_elapsed > SimDuration::ZERO {
                format!(
                    " ({:.2} ms per simulated second)",
                    total as f64 / 1e6 / sim_elapsed.as_secs_f64()
                )
            } else {
                String::new()
            }
        );
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_gauges_and_histograms_snapshot_into_frames() {
        let mut tel = Telemetry::new(TelemetryConfig::every(SimDuration::from_secs(1)));
        tel.set_counter("world", "messages_sent", None, 5);
        tel.set_gauge("world", "nodes_alive", None, 10.0);
        tel.observe("world", "payload_bytes", None, PAYLOAD_SIZE_BOUNDS, 100);
        tel.observe("world", "payload_bytes", None, PAYLOAD_SIZE_BOUNDS, 5000);
        assert!(!tel.due(SimTime::from_millis(999)));
        assert!(tel.due(SimTime::from_secs(1)));
        tel.sample(SimTime::from_secs(1));
        assert_eq!(tel.frame_count(), 1);
        let frame = tel.latest().unwrap();
        assert_eq!(frame.at, SimTime::from_secs(1));
        assert_eq!(frame.get("world", "messages_sent"), Some(5.0));
        assert_eq!(frame.get("world", "nodes_alive"), Some(10.0));
        assert_eq!(frame.get("world", "payload_bytes"), Some(2.0));
        assert_eq!(frame.get("world", "missing"), None);
    }

    #[test]
    fn skipped_boundaries_collapse_into_the_latest() {
        let mut tel = Telemetry::new(TelemetryConfig::every(SimDuration::from_secs(1)));
        tel.set_counter("world", "ticks", None, 1);
        // Virtual time jumps straight past boundaries 1..=5: one frame, at 5 s.
        tel.sample(SimTime::from_millis(5_400));
        assert_eq!(tel.frame_count(), 1);
        assert_eq!(tel.latest().unwrap().at, SimTime::from_secs(5));
        // The next boundary is 6 s, not 5.4 s + 1 s.
        assert!(!tel.due(SimTime::from_millis(5_900)));
        assert!(tel.due(SimTime::from_secs(6)));
    }

    #[test]
    fn ring_capacity_bounds_memory_and_counts_drops() {
        let mut tel = Telemetry::new(TelemetryConfig {
            sample_interval: SimDuration::from_secs(1),
            ring_capacity: 3,
            ..TelemetryConfig::default()
        });
        for s in 1..=10u64 {
            tel.set_counter("world", "ticks", None, s);
            tel.sample(SimTime::from_secs(s));
        }
        assert_eq!(tel.frame_count(), 3);
        assert_eq!(tel.dropped_frames(), 7);
        let first_kept = tel.frames().next().unwrap();
        assert_eq!(first_kept.at, SimTime::from_secs(8));
    }

    #[test]
    fn jsonl_is_deterministic_and_digest_matches() {
        let build = || {
            let mut tel = Telemetry::new(TelemetryConfig::every(SimDuration::from_secs(2)));
            tel.set_counter("world", "messages_sent", Some("wlan"), 7);
            tel.set_gauge("resilience", "breakers_open", None, 2.0);
            tel.observe("world", "payload_bytes", None, PAYLOAD_SIZE_BOUNDS, 64);
            tel.sample(SimTime::from_secs(2));
            tel
        };
        let (a, b) = (build(), build());
        assert_eq!(a.to_jsonl(), b.to_jsonl());
        assert_eq!(a.digest(), b.digest());
        let jsonl = a.to_jsonl();
        assert!(jsonl.contains("\"t_us\":2000000"));
        assert!(jsonl.contains("\"label\":\"wlan\""));
        assert!(jsonl.contains("\"kind\":\"histogram\""));
        assert_eq!(jsonl.lines().count(), 3);
    }

    #[test]
    fn on_frame_callback_streams_every_frame() {
        use std::cell::RefCell;
        use std::rc::Rc;
        let seen: Rc<RefCell<Vec<SimTime>>> = Rc::default();
        let sink = Rc::clone(&seen);
        let mut tel = Telemetry::new(TelemetryConfig::every(SimDuration::from_secs(1)));
        tel.set_on_frame(Box::new(move |frame| sink.borrow_mut().push(frame.at)));
        tel.set_gauge("world", "nodes_alive", None, 1.0);
        tel.sample(SimTime::from_secs(1));
        tel.sample(SimTime::from_millis(1_500));
        tel.sample(SimTime::from_secs(2));
        assert_eq!(*seen.borrow(), vec![SimTime::from_secs(1), SimTime::from_secs(2)]);
    }

    #[test]
    fn histogram_buckets_and_merge() {
        let mut a = Histogram::new(PAYLOAD_SIZE_BOUNDS);
        a.observe(10); // <= 16
        a.observe(16); // <= 16 (bounds are inclusive upper)
        a.observe(17); // <= 64
        a.observe(1_000_000); // overflow
        assert_eq!(a.bucket_counts(), &[2, 1, 0, 0, 0, 0, 1]);
        let mut b = Histogram::new(PAYLOAD_SIZE_BOUNDS);
        b.observe(64);
        b.merge(&a);
        assert_eq!(b.count(), 5);
        assert_eq!(b.sum(), 1_000_107);
        assert_eq!(b.bucket_counts(), &[2, 2, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn profiler_records_merges_and_reports() {
        let p = Profiler::enabled();
        let t0 = p.begin();
        assert!(t0.is_some());
        p.end(Phase::Discovery, t0);
        p.add(Phase::Delivery, 10, 5_000_000);
        let shard = Profiler::enabled();
        shard.add(Phase::Delivery, 5, 2_000_000);
        shard.add(Phase::BarrierMerge, 1, 1_000_000);
        p.merge(&shard);
        assert_eq!(p.calls(Phase::Delivery), 15);
        assert_eq!(p.nanos(Phase::Delivery), 7_000_000);
        assert_eq!(p.calls(Phase::Discovery), 1);
        let report = p.report(SimDuration::from_secs(10));
        assert!(report.contains("| delivery | 15 |"));
        assert!(report.contains("barrier-merge"));
        assert!(report.contains("per simulated second"));
    }

    #[test]
    fn disabled_profiler_is_inert() {
        let p = Profiler::disabled();
        assert!(p.begin().is_none());
        p.end(Phase::Timers, p.begin());
        assert_eq!(p.calls(Phase::Timers), 0);
        assert_eq!(p.nanos(Phase::Timers), 0);
    }
}
