//! # simnet — deterministic wireless-world substrate
//!
//! The PeerHood thesis ("Addressing mobility issues in mobile environment",
//! 2008) evaluates its middleware on real Bluetooth hardware carried between
//! offices. This crate replaces that testbed with a **deterministic
//! discrete-event simulator** so that the middleware, the handover logic and
//! every experiment in the thesis can be reproduced on a laptop from a seed.
//!
//! The simulator models:
//!
//! * **virtual time** ([`time`]) and a deterministic event loop ([`world`]),
//!   whose hot paths run against a uniform spatial grid index keyed by
//!   mobility-aware cell residency so worlds scale to thousands of nodes,
//! * **radio technologies** ([`radio`]) — Bluetooth, WLAN and GPRS profiles
//!   with coverage range, bit-rate, inquiry behaviour (including the
//!   Bluetooth inquiry asymmetry of §3.4.2), connection-setup latency and
//!   fault probability calibrated to the thesis' measurements, and a 0–255
//!   link-quality model with the 230 "signal low" threshold,
//! * **mobility** ([`mobility`]) — stationary devices, straight-line and
//!   waypoint walks, and random-waypoint roaming,
//! * **links and transmissions** ([`link`], [`world`]) — multi-second
//!   connection setup, in-flight messages that are lost when coverage breaks,
//!   periodic link checks and the artificial quality-decay mode the thesis
//!   uses in its own handover simulation (§5.2.1),
//! * **faults and churn** ([`faults`]) — seeded per-node schedules of node
//!   crashes & restarts, per-technology radio outages and link-level
//!   loss/corruption bursts, with a typed lifecycle-event stream; a world
//!   with no fault plans installed behaves byte-identically to one built
//!   without the subsystem,
//! * **adversaries** ([`adversary`]) — seeded network-partition windows
//!   (split-brain cuts that break links, suppress discovery and lose
//!   in-flight frames across the cut) and Byzantine compromised nodes that
//!   tamper with, sniff and inject syntactically valid hostile frames via a
//!   pluggable [`adversary::FrameForge`]; all adversarial randomness lives
//!   on its own labelled RNG stream, so adversary-free worlds are
//!   byte-identical to a build without the module.
//!
//! Behaviour is attached to nodes through the [`node::NodeAgent`] trait; the
//! `peerhood` crate implements that trait with the full middleware stack.
//!
//! ## Example
//!
//! ```
//! use simnet::prelude::*;
//! use std::any::Any;
//!
//! // A trivial agent that scans for neighbours once at start-up.
//! #[derive(Default)]
//! struct Scanner {
//!     found: usize,
//! }
//!
//! impl NodeAgent for Scanner {
//!     fn as_any(&self) -> &dyn Any { self }
//!     fn as_any_mut(&mut self) -> &mut dyn Any { self }
//!     fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
//!         ctx.start_inquiry(RadioTech::Bluetooth);
//!     }
//!     fn on_inquiry_complete(&mut self, _ctx: &mut NodeCtx<'_>, _tech: RadioTech, hits: Vec<InquiryHit>) {
//!         self.found = hits.len();
//!     }
//! }
//!
//! let mut world = World::new(WorldConfig::ideal(7));
//! let scanner = world.add_node(
//!     "scanner",
//!     MobilityModel::stationary(Point::new(0.0, 0.0)),
//!     &[RadioTech::Bluetooth],
//!     Box::new(Scanner::default()),
//! );
//! world.add_node(
//!     "peer",
//!     MobilityModel::stationary(Point::new(3.0, 0.0)),
//!     &[RadioTech::Bluetooth],
//!     Box::new(Scanner::default()),
//! );
//! world.run_for(SimDuration::from_secs(30));
//! let found = world.with_agent::<Scanner, _>(scanner, |s, _| s.found).unwrap();
//! assert_eq!(found, 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod adversary;
pub mod event;
pub mod faults;
pub mod geometry;
pub mod link;
pub mod metrics;
pub mod mobility;
pub mod node;
pub mod payload;
pub mod radio;
pub mod rng;
pub mod telemetry;
pub mod time;
pub mod world;

/// Convenient re-exports of the most commonly used types.
pub mod prelude {
    pub use crate::adversary::{AdversaryPlan, AdversaryStats, CompromisedNode, FrameForge, PartitionWindow};
    pub use crate::faults::{
        FaultAction, FaultPlan, FaultStats, FlappingLink, LifecycleEvent, LifecycleKind, LossBurst,
    };
    pub use crate::geometry::{Point, Rect};
    pub use crate::link::LinkInfo;
    pub use crate::metrics::{Counters, Metrics};
    pub use crate::mobility::{MobilityModel, MotionPlan};
    pub use crate::node::{
        AttemptId, ConnectError, DisconnectReason, IncomingConnection, InquiryHit, LinkId, NodeAgent, NodeId,
        TimerToken,
    };
    pub use crate::payload::{Payload, SharedPayload};
    pub use crate::radio::{RadioEnvironment, RadioProfile, RadioTech, QUALITY_LOW_THRESHOLD, QUALITY_MAX};
    pub use crate::rng::SimRng;
    pub use crate::telemetry::{Frame, FrameSink, Phase, Profiler, Telemetry, TelemetryConfig};
    pub use crate::time::{SimDuration, SimTime};
    pub use crate::world::partition::{AdaptiveShards, PartitionStats};
    pub use crate::world::shard::{ShardAgent, ShardCtx, ShardedConfig, ShardedWorld};
    pub use crate::world::{NodeCtx, SendError, World, WorldConfig};
}

pub use prelude::*;
