//! Determinism at scale: a 500-node world must produce the identical event
//! trace for the same seed — with and without fault plans installed — and
//! the spatial-grid discovery path must agree with the full-scan reference
//! oracle at every sampled instant.

use std::any::Any;

use simnet::prelude::*;

/// FNV-1a, the digest the trace is folded into.
fn fnv(digest: u64, value: u64) -> u64 {
    let mut d = digest;
    for byte in value.to_le_bytes() {
        d ^= byte as u64;
        d = d.wrapping_mul(0x100000001b3);
    }
    d
}

const INQUIRE: TimerToken = TimerToken(1);

/// A lightweight agent that scans periodically, connects to its best hit,
/// exchanges a payload and folds everything it observes into a digest.
struct Pulse {
    interval: SimDuration,
    digest: u64,
    attached: bool,
}

impl Pulse {
    fn new(interval: SimDuration) -> Self {
        Pulse {
            interval,
            digest: 0xcbf29ce484222325,
            attached: false,
        }
    }
}

impl NodeAgent for Pulse {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        // Stagger the first scan so the world is not phase-locked.
        let jitter = SimDuration::from_millis(ctx.rng().range(0..5_000u64));
        ctx.schedule(jitter, INQUIRE);
    }
    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        // Reborn with fresh session state; the digest survives as the
        // measurement record of both lives.
        self.attached = false;
        self.digest = fnv(self.digest, 0x60);
        self.on_start(ctx);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: TimerToken) {
        ctx.start_inquiry(RadioTech::Bluetooth);
        ctx.schedule(self.interval, INQUIRE);
    }
    fn on_inquiry_complete(&mut self, ctx: &mut NodeCtx<'_>, _tech: RadioTech, hits: Vec<InquiryHit>) {
        self.digest = fnv(self.digest, ctx.now().as_micros());
        for hit in &hits {
            self.digest = fnv(self.digest, hit.node.as_raw());
            self.digest = fnv(self.digest, hit.quality as u64);
        }
        if !self.attached {
            if let Some(best) = hits.iter().max_by_key(|h| (h.quality, std::cmp::Reverse(h.node))) {
                ctx.connect(best.node, RadioTech::Bluetooth);
                self.attached = true;
            }
        }
    }
    fn on_incoming_connection(&mut self, _ctx: &mut NodeCtx<'_>, incoming: IncomingConnection) -> bool {
        self.digest = fnv(self.digest, 0x10 + incoming.from.as_raw());
        true
    }
    fn on_connected(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        link: LinkId,
        peer: NodeId,
        _tech: RadioTech,
    ) {
        self.digest = fnv(self.digest, 0x20 + peer.as_raw());
        let _ = ctx.send(link, vec![0xAB; 32]);
    }
    fn on_connect_failed(
        &mut self,
        _ctx: &mut NodeCtx<'_>,
        _attempt: AttemptId,
        peer: NodeId,
        _tech: RadioTech,
        _error: ConnectError,
    ) {
        self.digest = fnv(self.digest, 0x30 + peer.as_raw());
        self.attached = false;
    }
    fn on_message(&mut self, _ctx: &mut NodeCtx<'_>, link: LinkId, from: NodeId, payload: Payload) {
        self.digest = fnv(self.digest, 0x40 + from.as_raw());
        self.digest = fnv(self.digest, link.0);
        self.digest = fnv(self.digest, payload.len() as u64);
    }
    fn on_disconnected(&mut self, _ctx: &mut NodeCtx<'_>, link: LinkId, peer: NodeId, _reason: DisconnectReason) {
        self.digest = fnv(self.digest, 0x50 + peer.as_raw());
        self.digest = fnv(self.digest, link.0);
        self.attached = false;
    }
}

fn build_city(seed: u64, nodes: usize) -> World {
    let mut world = World::new(WorldConfig::with_seed(seed));
    let area = Rect::square(300.0);
    let mut placer = SimRng::new(seed ^ 0x5EED);
    for i in 0..nodes {
        let start = Point::new(placer.uniform_f64(0.0, 300.0), placer.uniform_f64(0.0, 300.0));
        let mobility = if i % 4 == 0 {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.5,
                max_speed_mps: 2.0,
                pause: SimDuration::from_secs(10),
            }
        } else {
            MobilityModel::stationary(start)
        };
        world.add_node(
            format!("n{i}"),
            mobility,
            &[RadioTech::Bluetooth],
            Box::new(Pulse::new(SimDuration::from_secs(15))),
        );
    }
    world
}

/// Installs a seeded churn + outage + loss-burst plan on every tenth node.
fn install_fault_plans(world: &mut World, seed: u64) {
    let planner = SimRng::new(seed ^ 0xFA17_CAFE);
    for (i, node) in world.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
        if i % 10 != 0 {
            continue;
        }
        let mut rng = planner.derive(i as u64);
        let mut plan = FaultPlan::churn(
            SimTime::from_secs(60),
            SimDuration::from_secs(25),
            SimDuration::from_secs(8),
            &mut rng,
        );
        if i % 20 == 0 {
            plan = plan
                .radio_outage(
                    RadioTech::Bluetooth,
                    SimTime::from_secs(10 + (i as u64 % 30)),
                    SimDuration::from_secs(5),
                )
                .loss_burst(SimTime::from_secs(20), SimTime::from_secs(40), 0.25, 0.25);
        }
        world.install_fault_plan(node, plan);
    }
}

/// Runs the 500-node world and returns its event-trace digest: per-node
/// digests folded with the global metric counters.
fn trace_digest_with_faults(seed: u64, check_oracle: bool, faults: bool) -> u64 {
    let mut world = build_city(seed, 500);
    if faults {
        install_fault_plans(&mut world, seed);
    }
    let mut digest = 0xcbf29ce484222325u64;
    for _round in 0..6 {
        world.run_for(SimDuration::from_secs(10));
        if check_oracle {
            // The grid path and the full-scan reference must agree for every
            // node, mid-run, while mobile nodes are crossing cells.
            for node in world.node_ids().collect::<Vec<_>>() {
                let grid = world.neighbors_in_range(node, RadioTech::Bluetooth);
                let reference = world.neighbors_in_range_reference(node, RadioTech::Bluetooth);
                assert_eq!(grid, reference, "grid/scan divergence for {node} at {:?}", world.now());
            }
        }
    }
    for node in world.node_ids().collect::<Vec<_>>() {
        let d = world.with_agent::<Pulse, _>(node, |p, _| p.digest).unwrap_or(0);
        digest = fnv(digest, d);
    }
    let g = world.metrics().global();
    for v in [
        g.inquiries_started,
        g.inquiry_hits,
        g.connect_attempts,
        g.connects_established,
        g.connect_failures,
        g.messages_sent,
        g.messages_delivered,
        g.messages_lost,
        g.links_broken,
    ] {
        digest = fnv(digest, v);
    }
    let f = world.fault_stats();
    for v in [
        f.crashes,
        f.restarts,
        f.radio_outages,
        f.radio_restores,
        f.payloads_dropped,
        f.payloads_corrupted,
    ] {
        digest = fnv(digest, v);
    }
    for event in world.lifecycle_events() {
        digest = fnv(digest, event.at.as_micros());
        digest = fnv(digest, event.node.as_raw());
        let kind = match event.kind {
            LifecycleKind::NodeDown => 1,
            LifecycleKind::NodeUp => 2,
            LifecycleKind::RadioDown(tech) => 0x10 + tech as u64,
            LifecycleKind::RadioUp(tech) => 0x20 + tech as u64,
        };
        digest = fnv(digest, kind);
    }
    digest
}

fn trace_digest(seed: u64, check_oracle: bool) -> u64 {
    trace_digest_with_faults(seed, check_oracle, false)
}

/// Runs the 500-node churn city for 90 s with an optional partition window
/// cutting every seventh node off between t = 20 s and t = 70 s, and folds
/// the adversary counters into the trace digest alongside everything
/// `trace_digest_with_faults` already covers.
fn partitioned_churn_digest(seed: u64, partitioned: bool) -> (u64, AdversaryStats) {
    let mut world = build_city(seed, 500);
    install_fault_plans(&mut world, seed);
    if partitioned {
        let island: Vec<NodeId> = world
            .node_ids()
            .collect::<Vec<_>>()
            .into_iter()
            .enumerate()
            .filter_map(|(i, node)| (i % 7 == 0).then_some(node))
            .collect();
        world.install_adversary_plan(AdversaryPlan::new().partition(
            SimTime::from_secs(20),
            SimTime::from_secs(70),
            island,
        ));
    }
    // 90 s so the run spans the partition opening (20 s), the churn phase
    // (crashes begin at 60 s, inside the cut) and the heal (70 s).
    world.run_for(SimDuration::from_secs(90));
    let mut digest = 0xcbf29ce484222325u64;
    for node in world.node_ids().collect::<Vec<_>>() {
        let d = world.with_agent::<Pulse, _>(node, |p, _| p.digest).unwrap_or(0);
        digest = fnv(digest, d);
    }
    let g = world.metrics().global();
    for v in [
        g.inquiries_started,
        g.inquiry_hits,
        g.connect_attempts,
        g.connects_established,
        g.connect_failures,
        g.messages_sent,
        g.messages_delivered,
        g.messages_lost,
        g.links_broken,
    ] {
        digest = fnv(digest, v);
    }
    let f = world.fault_stats();
    for v in [f.crashes, f.restarts, f.radio_outages, f.payloads_dropped] {
        digest = fnv(digest, v);
    }
    let a = world.adversary_stats();
    for v in [
        a.partitions_started,
        a.partitions_healed,
        a.partition_drops,
        a.cut_links_broken,
        a.frames_tampered,
        a.frames_injected,
    ] {
        digest = fnv(digest, v);
    }
    (digest, a)
}

// ---------------------------------------------------------------------
// Full-PeerHood determinism: the real middleware stack at 1k nodes
// ---------------------------------------------------------------------

mod full_stack {
    use std::any::Any;
    use std::rc::Rc;

    use peerhood::application::Application;
    use peerhood::config::{DiscoveryMode, PeerHoodConfig};
    use peerhood::ids::{ConnectionId, DeviceAddress};
    use peerhood::node::{PeerHoodApi, PeerHoodNode};
    use peerhood::service::ServiceInfo;
    use simnet::prelude::*;

    /// Minimal full-stack workload: every node registers a `pulse` service,
    /// attaches to the best provider discovery finds and pings it.
    #[derive(Default)]
    pub struct PulseApp {
        current: Option<ConnectionId>,
        connecting: bool,
        pub sessions: u64,
        pub payloads: u64,
    }

    impl PulseApp {
        fn try_attach(&mut self, api: &mut PeerHoodApi<'_, '_>) {
            if self.current.is_none() && !self.connecting {
                if let Ok(conn) = api.connect_to_service("pulse") {
                    self.current = Some(conn);
                    self.connecting = true;
                }
            }
        }
    }

    impl Application for PulseApp {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn on_start(&mut self, api: &mut PeerHoodApi<'_, '_>) {
            self.current = None;
            self.connecting = false;
            let _ = api.register_service(ServiceInfo::new("pulse", "", 5));
            api.schedule_timer(SimDuration::from_secs(7), 1);
        }
        fn on_device_discovered(&mut self, api: &mut PeerHoodApi<'_, '_>, _address: DeviceAddress) {
            self.try_attach(api);
        }
        fn on_connected(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId) {
            if self.current == Some(conn) {
                self.connecting = false;
                self.sessions += 1;
            }
        }
        fn on_connect_failed(
            &mut self,
            _api: &mut PeerHoodApi<'_, '_>,
            conn: ConnectionId,
            _error: peerhood::error::PeerHoodError,
        ) {
            if self.current == Some(conn) {
                self.current = None;
                self.connecting = false;
            }
        }
        fn on_data(&mut self, _api: &mut PeerHoodApi<'_, '_>, _conn: ConnectionId, _payload: Vec<u8>) {
            self.payloads += 1;
        }
        fn on_disconnected(&mut self, _api: &mut PeerHoodApi<'_, '_>, conn: ConnectionId, _graceful: bool) {
            if self.current == Some(conn) {
                self.current = None;
                self.connecting = false;
            }
        }
        fn on_timer(&mut self, api: &mut PeerHoodApi<'_, '_>, _token: u64) {
            match self.current {
                Some(conn) if !self.connecting => {
                    let _ = api.send(conn, b"pulse".to_vec());
                }
                _ => self.try_attach(api),
            }
            api.schedule_timer(SimDuration::from_secs(7), 1);
        }
    }

    /// Shared configuration of the 1k-node full-stack city.
    pub fn config() -> Rc<PeerHoodConfig> {
        let mut cfg = PeerHoodConfig::new("pulse-dev", peerhood::device::MobilityClass::Hybrid);
        cfg.discovery.mode = DiscoveryMode::TwoHop;
        cfg.discovery.service_check_interval = SimDuration::from_secs(60);
        cfg.monitor.interval = SimDuration::from_secs(5);
        cfg.into()
    }

    /// Builds the world: 1000 Bluetooth devices, a quarter mobile, at a
    /// density that gives each a handful of neighbours.
    pub fn build(seed: u64) -> World {
        let side = 250.0;
        let mut world = World::new(WorldConfig::with_seed(seed));
        let area = Rect::square(side);
        let shared = config();
        let mut placer = SimRng::new(seed ^ 0xF011_57AC);
        for i in 0..1_000 {
            let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
            let mobility = if i % 4 == 0 {
                MobilityModel::RandomWaypoint {
                    area,
                    start,
                    min_speed_mps: 0.5,
                    max_speed_mps: 2.0,
                    pause: SimDuration::from_secs(10),
                }
            } else {
                MobilityModel::stationary(start)
            };
            world.add_node(
                format!("p{i}"),
                mobility,
                &[RadioTech::Bluetooth],
                Box::new(
                    PeerHoodNode::builder()
                        .config_shared(Rc::clone(&shared))
                        .app(PulseApp::default())
                        .build(),
                ),
            );
        }
        world
    }

    /// Runs the full-stack city under churn and folds everything observable
    /// — app counters, storage statistics, middleware counters, world
    /// metrics, fault statistics and the lifecycle stream — into one digest.
    pub fn digest(seed: u64, fnv: impl Fn(u64, u64) -> u64) -> u64 {
        let mut world = build(seed);
        super::install_fault_plans(&mut world, seed);
        world.run_for(SimDuration::from_secs(45));
        let mut digest = 0xcbf29ce484222325u64;
        for node in world.node_ids().collect::<Vec<_>>() {
            let per_node = world
                .with_agent::<PeerHoodNode, _>(node, |n, _| {
                    let stats = n.storage_stats();
                    let app_counts = n.with_app(|a: &PulseApp| (a.sessions, a.payloads)).unwrap_or((0, 0));
                    [
                        stats.known_devices as u64,
                        stats.direct_neighbors as u64,
                        stats.known_services as u64,
                        n.handover_completions(),
                        n.connections().len() as u64,
                        app_counts.0,
                        app_counts.1,
                    ]
                })
                .unwrap_or([u64::MAX; 7]);
            for v in per_node {
                digest = fnv(digest, v);
            }
        }
        let g = world.metrics().global();
        for v in [
            g.inquiries_started,
            g.inquiry_hits,
            g.connect_attempts,
            g.connects_established,
            g.messages_sent,
            g.messages_delivered,
            g.messages_lost,
            g.links_broken,
        ] {
            digest = fnv(digest, v);
        }
        let f = world.fault_stats();
        for v in [f.crashes, f.restarts, f.payloads_dropped, f.payloads_corrupted] {
            digest = fnv(digest, v);
        }
        for event in world.lifecycle_events() {
            digest = fnv(digest, event.at.as_micros());
            digest = fnv(digest, event.node.as_raw());
        }
        digest
    }
}

#[test]
fn same_seed_identical_full_peerhood_digest_at_1k_nodes() {
    // The complete middleware stack — daemon, discovery plugins, engine,
    // connection table, handover machinery, shared config, cached
    // advertisement frames, shared payloads — on 1000 nodes under churn and
    // loss bursts must reproduce byte-for-byte from the seed. This pins the
    // allocation-lean data path: any hidden nondeterminism (iteration over
    // unordered state, cache-dependent behaviour, payload aliasing bugs)
    // shows up as a digest mismatch.
    let first = full_stack::digest(1008, fnv);
    let second = full_stack::digest(1008, fnv);
    assert_eq!(first, second, "same seed must reproduce the identical full-stack run");
    let other = full_stack::digest(1009, fnv);
    assert_ne!(first, other, "different seeds should not collide");
}

#[test]
fn retired_tombstones_stay_bounded_under_long_churn() {
    // The working-set compaction claim: over a long churn run the retired
    // link tombstones (and their by_node index entries) must not grow
    // without bound — each crash reclaims the tombstones whose other
    // endpoint has also crashed past retirement. Every node churns here
    // (MTBF 20 s over a 400 s horizon ≈ 20 crashes each), so both sides of
    // nearly every dead link cycle several times.
    let mut world = build_city(3001, 200);
    let planner = SimRng::new(0xC0FF_EE00);
    for (i, node) in world.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
        let mut rng = planner.derive(i as u64);
        let plan = FaultPlan::churn(
            SimTime::from_secs(400),
            SimDuration::from_secs(20),
            SimDuration::from_secs(5),
            &mut rng,
        );
        world.install_fault_plan(node, plan);
    }
    let mut peak_retired = 0usize;
    let mut peak_active = 0usize;
    for _ in 0..40 {
        world.run_for(SimDuration::from_secs(10));
        peak_retired = peak_retired.max(world.retired_link_count());
        peak_active = peak_active.max(world.active_link_count());
    }
    let retired_now = world.retired_link_count();
    let compacted = world.compacted_link_count();
    let ever_retired = retired_now as u64 + compacted;
    eprintln!(
        "active peak={peak_active} now={} | retired peak={peak_retired} now={retired_now} \
         compacted={compacted} ever={ever_retired}",
        world.active_link_count()
    );
    assert!(compacted > 0, "the long churn run must actually reclaim tombstones");
    // Without compaction retired == ever_retired; with it, the live
    // tombstone set must be a small fraction of everything ever retired.
    assert!(
        (retired_now as u64) * 2 < ever_retired,
        "most tombstones must be reclaimed: {retired_now} live of {ever_retired} ever"
    );
    // And the peak itself must stay far below the no-compaction total: the
    // working set is bounded, not merely trimmed at the end.
    assert!(
        (peak_retired as u64) * 2 < ever_retired.max(1),
        "peak retired {peak_retired} must stay well below the {ever_retired} a compaction-free run would hold"
    );
    // The active table only ever holds open/draining links.
    assert!(
        peak_active < 2 * 200,
        "active link table must stay proportional to the population, got peak {peak_active}"
    );
}

#[test]
fn same_seed_identical_trace_digest_at_500_nodes() {
    let first = trace_digest(2008, true);
    let second = trace_digest(2008, false);
    assert_eq!(first, second, "same seed must reproduce the identical event trace");
    // A different seed must give a different trace (astronomically unlikely
    // to collide if the RNG plumbing is healthy).
    let other = trace_digest(2009, false);
    assert_ne!(first, other, "different seeds should not collide");
}

#[test]
fn same_seed_and_fault_plan_identical_trace_digest_at_500_nodes() {
    // Crashes, restarts, radio outages and loss bursts included: the whole
    // event trace — and the lifecycle stream itself — must reproduce from
    // the seed. The oracle check runs mid-churn, so the grid's
    // eviction/reinsertion path is compared against the full scan while
    // nodes are dying and rebooting.
    let first = trace_digest_with_faults(2008, true, true);
    let second = trace_digest_with_faults(2008, false, true);
    assert_eq!(
        first, second,
        "same seed + same fault plan must reproduce the identical event trace"
    );
    // The faults must actually change the run relative to the fault-free
    // world, and a different seed must diverge.
    assert_ne!(first, trace_digest(2008, false), "the plans must have bitten");
    assert_ne!(
        first,
        trace_digest_with_faults(2009, false, true),
        "different seeds should not collide"
    );
}

#[test]
fn partitioned_churn_city_trace_is_deterministic_and_the_cut_bites() {
    // Partitions layered on top of churn, outages and loss bursts: the full
    // adversarial trace — including the adversary counters themselves —
    // must reproduce from the seed, and the cut must visibly change the run
    // relative to the partition-free city.
    let (first, stats) = partitioned_churn_digest(2008, true);
    let (second, _) = partitioned_churn_digest(2008, true);
    assert_eq!(
        first, second,
        "same seed + same partition window must reproduce the identical event trace"
    );
    assert_eq!(stats.partitions_started, 1, "the window must have opened");
    assert_eq!(
        stats.partitions_healed, 1,
        "the window must have healed before the run ended"
    );
    assert!(
        stats.cut_links_broken + stats.partition_drops > 0,
        "cutting a 71-node island out of a 500-node city must break links or drop payloads"
    );
    let (unpartitioned, _) = partitioned_churn_digest(2008, false);
    assert_ne!(first, unpartitioned, "the partition must have bitten");
    let (other_seed, _) = partitioned_churn_digest(2009, true);
    assert_ne!(first, other_seed, "different seeds should not collide");
}

// ---------------------------------------------------------------------
// Sharded-world determinism: shard count must be invisible in the trace
// ---------------------------------------------------------------------

mod sharded {
    use std::any::Any;

    use simnet::prelude::*;

    const INQUIRE: TimerToken = TimerToken(1);

    /// The sharded twin of `Pulse`: scans, attaches to its best hit,
    /// exchanges a payload and folds every observation into a digest.
    pub struct ShardPulse {
        interval: SimDuration,
        pub digest: u64,
        attached: bool,
    }

    impl ShardPulse {
        fn new(interval: SimDuration) -> Self {
            ShardPulse {
                interval,
                digest: 0xcbf29ce484222325,
                attached: false,
            }
        }
        fn fold(&mut self, value: u64) {
            self.digest = super::fnv(self.digest, value);
        }
    }

    impl ShardAgent for ShardPulse {
        fn as_any(&self) -> &dyn Any {
            self
        }
        fn as_any_mut(&mut self) -> &mut dyn Any {
            self
        }
        fn on_start(&mut self, ctx: &mut ShardCtx<'_>) {
            let jitter = SimDuration::from_millis(ctx.rng().range(0..5_000u64));
            ctx.schedule(jitter, INQUIRE);
        }
        fn on_restart(&mut self, ctx: &mut ShardCtx<'_>) {
            self.attached = false;
            self.fold(0x60);
            self.on_start(ctx);
        }
        fn on_timer(&mut self, ctx: &mut ShardCtx<'_>, _token: TimerToken) {
            ctx.start_inquiry(RadioTech::Bluetooth);
            ctx.schedule(self.interval, INQUIRE);
        }
        fn on_inquiry_complete(&mut self, ctx: &mut ShardCtx<'_>, _tech: RadioTech, hits: Vec<InquiryHit>) {
            self.fold(ctx.now().as_micros());
            for hit in &hits {
                self.fold(hit.node.as_raw());
                self.fold(hit.quality as u64);
            }
            if !self.attached {
                if let Some(best) = hits.iter().max_by_key(|h| (h.quality, std::cmp::Reverse(h.node))) {
                    ctx.connect(best.node, RadioTech::Bluetooth);
                    self.attached = true;
                }
            }
        }
        fn on_incoming_connection(&mut self, _ctx: &mut ShardCtx<'_>, incoming: IncomingConnection) -> bool {
            self.fold(0x10 + incoming.from.as_raw());
            true
        }
        fn on_connected(
            &mut self,
            ctx: &mut ShardCtx<'_>,
            _attempt: AttemptId,
            link: LinkId,
            peer: NodeId,
            _tech: RadioTech,
        ) {
            self.fold(0x20 + peer.as_raw());
            let _ = ctx.send(link, vec![0xAB; 32]);
        }
        fn on_connect_failed(
            &mut self,
            _ctx: &mut ShardCtx<'_>,
            _attempt: AttemptId,
            peer: NodeId,
            _tech: RadioTech,
            _error: ConnectError,
        ) {
            self.fold(0x30 + peer.as_raw());
            self.attached = false;
        }
        fn on_message(&mut self, _ctx: &mut ShardCtx<'_>, link: LinkId, from: NodeId, payload: SharedPayload) {
            self.fold(0x40 + from.as_raw());
            self.fold(link.0);
            self.fold(payload.len() as u64);
        }
        fn on_disconnected(&mut self, _ctx: &mut ShardCtx<'_>, link: LinkId, peer: NodeId, _reason: DisconnectReason) {
            self.fold(0x50 + peer.as_raw());
            self.fold(link.0);
            self.attached = false;
        }
    }

    /// 480 Bluetooth nodes, a quarter mobile, with churn on every tenth
    /// node and radio outages on every twentieth — the fault classes the
    /// sharded engine supports (loss bursts are sequential-world-only).
    pub fn build_city(seed: u64, shards: usize) -> ShardedWorld {
        let side = 300.0;
        let area = Rect::square(side);
        let mut config = ShardedConfig::new(seed, area);
        config.shards = shards;
        config.max_speed_mps = 2.0;
        let mut world = ShardedWorld::new(config);
        let mut placer = SimRng::new(seed ^ 0x5EED);
        for i in 0..480 {
            let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
            let mobility = if i % 4 == 0 {
                MobilityModel::RandomWaypoint {
                    area,
                    start,
                    min_speed_mps: 0.5,
                    max_speed_mps: 2.0,
                    pause: SimDuration::from_secs(10),
                }
            } else {
                MobilityModel::stationary(start)
            };
            world.add_node(
                format!("n{i}"),
                mobility,
                &[RadioTech::Bluetooth],
                Box::new(ShardPulse::new(SimDuration::from_secs(15))),
            );
        }
        let planner = SimRng::new(seed ^ 0xFA17_CAFE);
        for (i, node) in world.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            if i % 10 != 0 {
                continue;
            }
            let mut rng = planner.derive(i as u64);
            let mut plan = FaultPlan::churn(
                SimTime::from_secs(60),
                SimDuration::from_secs(25),
                SimDuration::from_secs(8),
                &mut rng,
            );
            if i % 20 == 0 {
                plan = plan.radio_outage(
                    RadioTech::Bluetooth,
                    SimTime::from_secs(10 + (i as u64 % 30)),
                    SimDuration::from_secs(5),
                );
            }
            world.install_fault_plan(node, &plan);
        }
        world
    }

    /// The hotspot twin of `build_city`: the same churn and radio-outage
    /// plans, but 70% of the nodes mill inside a district on the right of
    /// the city — the load skew the density-adaptive partition exists for.
    pub fn build_hotspot_city(seed: u64, shards: usize, adaptive: bool) -> ShardedWorld {
        let side = 300.0;
        let area = Rect::square(side);
        let district = Rect::new(0.65 * side, 0.25 * side, 0.95 * side, 0.75 * side);
        let mut config = ShardedConfig::new(seed, area);
        config.shards = shards;
        config.max_speed_mps = 2.0;
        config.window = Some(SimDuration::from_secs(1));
        config.adaptive = AdaptiveShards {
            enabled: adaptive,
            ..AdaptiveShards::default()
        };
        let mut world = ShardedWorld::new(config);
        let mut placer = SimRng::new(seed ^ 0x5EED);
        for i in 0..480 {
            let mobility = if i % 10 < 7 {
                // The crowd: milling pedestrians inside the district.
                let start = Point::new(
                    placer.uniform_f64(district.min_x, district.max_x),
                    placer.uniform_f64(district.min_y, district.max_y),
                );
                MobilityModel::RandomWaypoint {
                    area: district,
                    start,
                    min_speed_mps: 0.5,
                    max_speed_mps: 2.0,
                    pause: SimDuration::from_secs(10),
                }
            } else {
                // Sparse stationary background across the whole city.
                let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
                MobilityModel::stationary(start)
            };
            world.add_node(
                format!("n{i}"),
                mobility,
                &[RadioTech::Bluetooth],
                Box::new(ShardPulse::new(SimDuration::from_secs(15))),
            );
        }
        let planner = SimRng::new(seed ^ 0xFA17_CAFE);
        for (i, node) in world.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
            if i % 10 != 0 {
                continue;
            }
            let mut rng = planner.derive(i as u64);
            let mut plan = FaultPlan::churn(
                SimTime::from_secs(60),
                SimDuration::from_secs(25),
                SimDuration::from_secs(8),
                &mut rng,
            );
            if i % 20 == 0 {
                plan = plan.radio_outage(
                    RadioTech::Bluetooth,
                    SimTime::from_secs(10 + (i as u64 % 30)),
                    SimDuration::from_secs(5),
                );
            }
            world.install_fault_plan(node, &plan);
        }
        world
    }

    /// Runs the city for 60 s and folds every observable — per-agent
    /// digests, global counters, fault statistics and the lifecycle
    /// stream — into one trace digest.
    pub fn trace_digest(seed: u64, shards: usize) -> u64 {
        let mut world = build_city(seed, shards);
        world.run_for(SimDuration::from_secs(60));
        world_digest(&mut world)
    }

    /// `trace_digest` over the hotspot city, also reporting how many
    /// barrier-time rebalances fired.
    pub fn hotspot_trace_digest(seed: u64, shards: usize, adaptive: bool) -> (u64, u64) {
        let mut world = build_hotspot_city(seed, shards, adaptive);
        world.run_for(SimDuration::from_secs(60));
        let rebalances = world.partition_stats().rebalances;
        (world_digest(&mut world), rebalances)
    }

    /// Folds every observable of a finished run into one trace digest.
    pub fn world_digest(world: &mut ShardedWorld) -> u64 {
        let fnv = super::fnv;
        let mut digest = 0xcbf29ce484222325u64;
        for node in world.node_ids().collect::<Vec<_>>() {
            let d = world.with_agent::<ShardPulse, _>(node, |p| p.digest).unwrap_or(0);
            digest = fnv(digest, d);
        }
        let g = *world.metrics().global();
        for v in [
            g.inquiries_started,
            g.inquiry_hits,
            g.connect_attempts,
            g.connects_established,
            g.connect_failures,
            g.messages_sent,
            g.messages_delivered,
            g.messages_lost,
            g.links_broken,
        ] {
            digest = fnv(digest, v);
        }
        let f = world.fault_stats();
        for v in [f.crashes, f.restarts, f.radio_outages, f.radio_restores] {
            digest = fnv(digest, v);
        }
        for event in world.lifecycle_events() {
            digest = fnv(digest, event.at.as_micros());
            digest = fnv(digest, event.node.as_raw());
            let kind = match event.kind {
                LifecycleKind::NodeDown => 1,
                LifecycleKind::NodeUp => 2,
                LifecycleKind::RadioDown(tech) => 0x10 + tech as u64,
                LifecycleKind::RadioUp(tech) => 0x20 + tech as u64,
            };
            digest = fnv(digest, kind);
        }
        digest
    }
}

#[test]
fn sharded_world_trace_is_identical_at_1_2_and_8_shards() {
    // The tentpole determinism claim: shard count is pure load
    // partitioning. A 480-node Bluetooth city under churn and radio
    // outages must produce the byte-identical trace — every agent
    // callback, every counter, every lifecycle event — whether it runs on
    // one shard, two or eight. Any ordering leak (barrier merge, RNG
    // stream, migration, fault delivery) shows up as a digest mismatch.
    let one = sharded::trace_digest(4217, 1);
    let two = sharded::trace_digest(4217, 2);
    let eight = sharded::trace_digest(4217, 8);
    assert_eq!(one, two, "2-shard trace diverged from the 1-shard reference");
    assert_eq!(one, eight, "8-shard trace diverged from the 1-shard reference");
    // And the digest must actually be seed-sensitive, not a constant.
    let other = sharded::trace_digest(4218, 2);
    assert_ne!(one, other, "different seeds should not collide");
}

#[test]
fn hotspot_city_trace_is_invariant_to_shards_and_adaptivity() {
    // The load-balancing determinism claim: the density-adaptive partition
    // may move stripe boundaries at any barrier, but boundaries only decide
    // which worker executes a node — never what the node observes. A
    // hotspot city (70% of nodes in one district) under churn and radio
    // outages must produce the byte-identical trace at 1, 2 and 8 shards,
    // with adaptivity on or off, even though the adaptive runs execute on a
    // genuinely different partition.
    let (reference, _) = sharded::hotspot_trace_digest(9021, 1, false);
    let mut adaptive_rebalances = 0;
    for (shards, adaptive) in [(2, false), (8, false), (1, true), (2, true), (8, true)] {
        let (digest, rebalances) = sharded::hotspot_trace_digest(9021, shards, adaptive);
        assert_eq!(
            digest, reference,
            "trace diverged at shards={shards} adaptive={adaptive}"
        );
        if adaptive && shards > 1 {
            adaptive_rebalances += rebalances;
        }
    }
    // The invariance must not be vacuous: the skewed city has to actually
    // trip the hysteresis gate and re-cut the partition.
    assert!(
        adaptive_rebalances > 0,
        "the hotspot must trigger at least one rebalance"
    );
    // And the digest must be seed-sensitive, not a constant.
    let (other, _) = sharded::hotspot_trace_digest(9022, 2, true);
    assert_ne!(reference, other, "different seeds should not collide");
}

#[test]
#[should_panic(expected = "sequential-only")]
fn sharded_world_cleanly_rejects_a_partition_plan() {
    // The partition cut sweep consults globally ordered link state and one
    // adversary RNG stream, neither of which has a shard-local
    // representation — so, exactly like loss bursts, the sharded engine
    // must refuse the plan outright rather than silently diverge from the
    // sequential trace the test above pins down.
    let mut world = sharded::build_city(2008, 2);
    let island: Vec<NodeId> = world.node_ids().take(40).collect();
    world.install_adversary_plan(&AdversaryPlan::new().partition(
        SimTime::from_secs(20),
        SimTime::from_secs(70),
        island,
    ));
}

#[test]
fn full_peerhood_city_actually_runs_the_middleware() {
    let mut world = full_stack::build(77);
    world.run_for(SimDuration::from_secs(45));
    let g = *world.metrics().global();
    eprintln!(
        "inquiries={} hits={} connects={} delivered={}",
        g.inquiries_started, g.inquiry_hits, g.connects_established, g.messages_delivered
    );
    assert!(g.inquiries_started >= 1_000, "every node must scan");
    assert!(g.inquiry_hits > 0, "devices must hear each other");
    assert!(g.connects_established > 0, "daemon fetches/sessions must connect");
    assert!(g.messages_delivered > 0, "frames must flow");
}
