//! A tiny offline micro-benchmark harness.
//!
//! The container building this workspace has no crates registry, so
//! Criterion is unavailable; this module provides the small subset the
//! benches need — named groups, per-function wall-clock timing with warm-up,
//! and a markdown-ish report — with zero dependencies. Benches are ordinary
//! `harness = false` targets whose `main` drives a [`Group`].

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Re-exported so benches can `use bench::harness::black_box` without
/// spelling out `std::hint`.
pub use std::hint::black_box as bb;

/// A named collection of benchmark measurements, printed on [`Group::finish`].
pub struct Group {
    name: String,
    sample_size: usize,
    results: Vec<(String, Duration)>,
    /// When true (`--quick` or `BENCH_QUICK=1`), one iteration per bench —
    /// useful to smoke-test that every bench still runs.
    quick: bool,
}

impl Group {
    /// Creates a benchmark group with the given name.
    pub fn new(name: impl Into<String>) -> Self {
        let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("BENCH_QUICK").is_some();
        Group {
            name: name.into(),
            sample_size: 10,
            results: Vec::new(),
            quick,
        }
    }

    /// Sets the number of timed samples per benchmark (default 10).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Measures `f`, recording the mean wall-clock time of `sample_size`
    /// runs after one warm-up run.
    pub fn bench<R>(&mut self, label: impl Into<String>, mut f: impl FnMut() -> R) -> &mut Self {
        let label = label.into();
        let samples = if self.quick { 1 } else { self.sample_size };
        // Warm-up (also validates the closure runs at all).
        black_box(f());
        let start = Instant::now();
        for _ in 0..samples {
            black_box(f());
        }
        let mean = start.elapsed() / samples as u32;
        eprintln!("  {}/{label}: {mean:?} (n={samples})", self.name);
        self.results.push((label, mean));
        self
    }

    /// Prints the recorded results as a markdown table.
    pub fn finish(&self) {
        println!("### bench group `{}`", self.name);
        println!();
        println!("| benchmark | mean time |");
        println!("|---|---|");
        for (label, mean) in &self.results {
            println!("| {label} | {mean:?} |");
        }
        println!();
    }
}
