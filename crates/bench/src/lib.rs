//! Benchmark and reproduction harness for the PeerHood thesis.
//!
//! The Criterion benchmarks in `benches/` measure the building blocks
//! (wire codec, discovery convergence, bridge relaying, handover, result
//! routing, Gnutella comparison); the `repro` binary in `src/bin/repro.rs`
//! regenerates the figure-level tables recorded in `EXPERIMENTS.md`.
