//! Benchmark and reproduction harness for the PeerHood thesis.
//!
//! The benches in `benches/` measure the building blocks (wire codec,
//! discovery convergence, bridge relaying, handover, result routing,
//! Gnutella comparison) using the dependency-free [`harness`] module; the
//! `repro` binary in `src/bin/repro.rs` regenerates the figure-level tables
//! recorded in `EXPERIMENTS.md`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
