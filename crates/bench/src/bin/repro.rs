//! Regenerates every figure-level result of the thesis' evaluation, runs
//! single experiments, and drives multi-seed sweep campaigns.
//!
//! ```text
//! cargo run -p bench --release --bin repro                          # full E1-E19 suite
//! cargo run -p bench --release --bin repro -- --quick --seed 42     # reduced sizes, explicit seed
//! cargo run -p bench --release --bin repro -- --list                # experiments & parameters
//! cargo run -p bench --release --bin repro -- churn --quick         # one experiment (slug or id)
//! cargo run -p bench --release --bin repro -- e8 --seed 7
//! cargo run -p bench --release --bin repro -- metropolis --quick --telemetry --profile
//! cargo run -p bench --release --bin repro -- hotspot --quick --shards 4 --adaptive-shards
//! cargo run -p bench --release --bin repro -- watch overload --quick
//! cargo run -p bench --release --bin repro -- sweep churn --seeds 8 --threads 8 --quick
//! cargo run -p bench --release --bin repro -- sweep churn --quick \
//!     --grid churn=0,60,240 --grid nodes=100 --seeds 4 --json BENCH_sweep.json
//! ```
//!
//! Every subcommand accepts `--seed N` and `--quick` uniformly. Suite and
//! single-experiment output is the markdown recorded in `EXPERIMENTS.md`;
//! `sweep` prints an aggregated statistics table (mean/stddev/min/max/95%
//! CI across seeds, grouped by grid point) and writes the same aggregation
//! as JSON — byte-identical for any `--threads` value.
//!
//! The telemetry plane (`--telemetry`, `--profile`, `watch`) writes to
//! **stderr** and side files only: the stdout report stays byte-identical
//! with the plane on or off, which CI diffs directly.

use std::process::ExitCode;

use scenarios::experiments::{find, registry, Params};
use scenarios::telemetry::{TelemetryMode, TelemetrySettings};
use scenarios::{run_all, Effort};
use simnet::SimDuration;
use sweep::{aggregate, run_sweep, SweepSpec};

/// Default suite seed (kept from the original evaluation scripts).
const DEFAULT_SUITE_SEED: u64 = 20080815;
/// Default JSON artifact path of `sweep` (CI uploads it).
const DEFAULT_SWEEP_JSON: &str = "BENCH_sweep.json";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(message) => {
            eprintln!("error: {message}");
            eprintln!("run `repro --list` for the available experiments and flags");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let quick = args.iter().any(|a| a == "--quick");
    let effort = if quick { Effort::Quick } else { Effort::Full };
    let seed = flag_value(args, "--seed")?
        .map(|s| s.parse::<u64>().map_err(|_| format!("--seed: `{s}` is not a u64")))
        .transpose()?;

    if args.iter().any(|a| a == "--list") {
        list();
        return Ok(());
    }
    match first_positional(args) {
        Some("sweep") => {
            reject_unknown_flags(args, &["--quick", "--seed", "--seeds", "--threads", "--grid", "--json"])?;
            run_sweep_command(args, seed, quick)
        }
        Some("watch") => {
            // Live mode: one experiment with frame streaming forced on.
            reject_unknown_flags(
                args,
                &[
                    "--quick",
                    "--seed",
                    "--shards",
                    "--adaptive-shards",
                    "--imbalance",
                    "--patience",
                    "--shard-series",
                    "--interval",
                    "--telemetry-jsonl",
                    "--profile",
                    "--defenses",
                ],
            )?;
            let watch_at = args.iter().position(|a| a == "watch").expect("dispatched on `watch`");
            let name = first_positional(&args[watch_at + 1..])
                .ok_or("watch needs an experiment, e.g. `repro watch overload`")?;
            run_one(name, args, seed, quick, effort, true)
        }
        Some(name) => {
            // Reject sweep-only (and mistyped) flags instead of silently
            // running something other than what was asked for.
            reject_unknown_flags(
                args,
                &[
                    "--quick",
                    "--seed",
                    "--shards",
                    "--adaptive-shards",
                    "--imbalance",
                    "--patience",
                    "--shard-series",
                    "--telemetry",
                    "--interval",
                    "--telemetry-jsonl",
                    "--profile",
                    "--defenses",
                ],
            )?;
            run_one(name, args, seed, quick, effort, false)
        }
        None => {
            // The full E1-E19 suite.
            reject_unknown_flags(args, &["--quick", "--seed"])?;
            let seed = seed.unwrap_or(DEFAULT_SUITE_SEED);
            eprintln!("running the E1-E19 experiment suite (seed {seed}, {effort:?}) ...");
            let reports = run_all(seed, effort);
            for report in &reports {
                println!("{report}");
                println!();
                eprintln!("  finished {}", report.id);
            }
            Ok(())
        }
    }
}

/// Runs a single experiment (`repro <exp>` or `repro watch <exp>`): resolves
/// the slug, applies `--shards`, engages the telemetry plane per the flags
/// and prints the report to stdout and every telemetry artefact to stderr.
fn run_one(
    name: &str,
    args: &[String],
    seed: Option<u64>,
    quick: bool,
    effort: Effort,
    watch: bool,
) -> Result<(), String> {
    let shards = flag_value(args, "--shards")?
        .map(|s| {
            s.parse::<usize>()
                .map_err(|_| format!("--shards: `{s}` is not a count"))
        })
        .transpose()?;
    // `--shards` means the parallel engine: E15's sequential city has
    // no shard knob, so reroute the request to the sharded metropolis.
    let name = if shards.is_some() && find(name).map(|e| e.id() == "E15").unwrap_or(false) {
        eprintln!("note: --shards selects the sharded engine; running E17 (sharded-metropolis) instead of E15");
        "sharded-metropolis"
    } else {
        name
    };
    // A single experiment by slug or id, through the uniform trait.
    let experiment = find(name).ok_or_else(|| format!("unknown experiment `{name}`"))?;
    let mut params = Params::new();
    if let Some(shards) = shards {
        if !experiment.params().iter().any(|p| p.key == "shards") {
            return Err(format!("{} does not take --shards", experiment.id()));
        }
        params.set("shards", shards.to_string());
    }
    // The load-balancing knobs map onto grid parameters of the same name
    // (E18 carries them); like --shards they change wall-clock time only.
    if args.iter().any(|a| a == "--adaptive-shards") {
        if !experiment.params().iter().any(|p| p.key == "adaptive") {
            return Err(format!("{} does not take --adaptive-shards", experiment.id()));
        }
        params.set("adaptive", "on");
    }
    for (flag, key) in [
        ("--imbalance", "imbalance"),
        ("--patience", "patience"),
        ("--defenses", "defenses"),
    ] {
        if let Some(value) = flag_value(args, flag)? {
            if !experiment.params().iter().any(|p| p.key == key) {
                return Err(format!("{} does not take {flag}", experiment.id()));
            }
            params.set(key, value);
        }
    }

    let jsonl_path = flag_value(args, "--telemetry-jsonl")?;
    let profile = args.iter().any(|a| a == "--profile");
    let record = args.iter().any(|a| a == "--telemetry") || jsonl_path.is_some();
    let interval = match flag_value(args, "--interval")? {
        Some(s) => {
            let secs: f64 = s
                .parse()
                .ok()
                .filter(|v: &f64| v.is_finite() && *v > 0.0)
                .ok_or_else(|| format!("--interval: `{s}` is not a positive number of seconds"))?;
            SimDuration::from_secs_f64(secs)
        }
        None => TelemetrySettings::default().sample_interval,
    };
    let mode = if watch {
        TelemetryMode::Watch
    } else if record {
        TelemetryMode::Record
    } else {
        TelemetryMode::Off
    };
    scenarios::telemetry::configure(TelemetrySettings {
        mode,
        sample_interval: interval,
        profile,
        // Per-shard series are layout-dependent, so they are a deliberate
        // opt-in: the default captures diff clean across --shards values.
        shard_series: args.iter().any(|a| a == "--shard-series"),
    });

    let seed = seed.unwrap_or_else(|| experiment.suite_seed(DEFAULT_SUITE_SEED));
    eprintln!(
        "running {} ({}) with seed {seed} ({effort:?}) ...",
        experiment.id(),
        experiment.slug()
    );
    println!("{}", experiment.run(seed, &params, quick).report);

    let captures = scenarios::telemetry::take_captures();
    scenarios::telemetry::configure(TelemetrySettings::default());
    if (mode != TelemetryMode::Off || profile) && captures.is_empty() {
        eprintln!(
            "note: {} left no telemetry frames (every world-based runner E1-E19 is instrumented; \
             E2/E3 are closed-form)",
            experiment.id()
        );
    }
    let mut jsonl = String::new();
    for capture in &captures {
        if let Some(rollup) = &capture.rollup {
            eprintln!("--- telemetry {} (digest {:016x}) ---", capture.scope, capture.digest);
            eprint!("{rollup}");
            eprintln!();
        }
        if let Some(profile) = &capture.profile {
            eprintln!("--- profile {} ---", capture.scope);
            eprint!("{profile}");
            eprintln!();
        }
        jsonl.push_str(&capture.jsonl);
    }
    if let Some(path) = jsonl_path {
        std::fs::write(&path, jsonl).map_err(|e| format!("writing {path}: {e}"))?;
        eprintln!("  wrote {path}");
    }
    Ok(())
}

/// Errors on any `--flag` outside `allowed` — sweep-only flags on other
/// subcommands and typos alike fail loudly instead of being dropped.
fn reject_unknown_flags(args: &[String], allowed: &[&str]) -> Result<(), String> {
    for arg in args {
        if arg.starts_with("--") && !allowed.contains(&arg.as_str()) {
            return Err(format!("unknown flag `{arg}` here (allowed: {})", allowed.join(", ")));
        }
    }
    Ok(())
}

/// First token that is neither a flag nor a flag value — the subcommand,
/// wherever it sits among the flags.
fn first_positional(args: &[String]) -> Option<&str> {
    const VALUE_FLAGS: [&str; 11] = [
        "--seed",
        "--seeds",
        "--threads",
        "--json",
        "--grid",
        "--shards",
        "--imbalance",
        "--patience",
        "--interval",
        "--telemetry-jsonl",
        "--defenses",
    ];
    let mut skip_value = false;
    for arg in args {
        if skip_value {
            skip_value = false;
            continue;
        }
        if arg.starts_with("--") {
            skip_value = VALUE_FLAGS.contains(&arg.as_str());
            continue;
        }
        return Some(arg);
    }
    None
}

/// `repro sweep <experiment> [--seeds N] [--seed BASE] [--threads N]
/// [--grid k=v1,v2,...]... [--quick] [--json PATH]`
fn run_sweep_command(args: &[String], base_seed: Option<u64>, quick: bool) -> Result<(), String> {
    let sweep_at = args.iter().position(|a| a == "sweep").expect("dispatched on `sweep`");
    let experiment =
        first_positional(&args[sweep_at + 1..]).ok_or("sweep needs an experiment, e.g. `repro sweep churn`")?;
    let seeds: usize = match flag_value(args, "--seeds")? {
        Some(s) => s.parse().map_err(|_| format!("--seeds: `{s}` is not a count"))?,
        None => 8,
    };
    let threads: usize = match flag_value(args, "--threads")? {
        Some(s) => s.parse().map_err(|_| format!("--threads: `{s}` is not a count"))?,
        None => std::thread::available_parallelism().map(usize::from).unwrap_or(1),
    };
    let json_path = flag_value(args, "--json")?.unwrap_or_else(|| DEFAULT_SWEEP_JSON.to_string());

    let mut spec = SweepSpec::new(experiment)
        .seed_range(base_seed.unwrap_or(42), seeds.max(1))
        .quick(quick);
    for (i, arg) in args.iter().enumerate() {
        if arg == "--grid" {
            let kv = args.get(i + 1).ok_or("--grid needs a key=v1,v2,... argument")?;
            let (key, values) = kv
                .split_once('=')
                .ok_or_else(|| format!("--grid: `{kv}` is not key=v1,v2,..."))?;
            let values: Vec<String> = values.split(',').map(str::to_string).collect();
            spec = spec.axis(key, values).map_err(|e| e.to_string())?;
        }
    }
    spec.validate().map_err(|e| e.to_string())?;

    eprintln!(
        "sweeping {} over {} seed(s) x {} grid point(s) on {} thread(s) ({}) ...",
        spec.experiment,
        spec.seeds.len(),
        spec.grid_points(),
        threads,
        if quick { "quick" } else { "full" },
    );
    let run = run_sweep(&spec, threads).map_err(|e| e.to_string())?;
    let report = aggregate(&run);
    print!("{}", report.to_markdown());
    std::fs::write(&json_path, report.to_json()).map_err(|e| format!("writing {json_path}: {e}"))?;
    eprintln!("  wrote {json_path}");
    Ok(())
}

/// Value of `--flag value`, if present.
fn flag_value(args: &[String], flag: &str) -> Result<Option<String>, String> {
    match args.iter().position(|a| a == flag) {
        Some(i) => args
            .get(i + 1)
            .filter(|v| !v.starts_with("--"))
            .cloned()
            .map(Some)
            .ok_or_else(|| format!("{flag} needs a value")),
        None => Ok(None),
    }
}

/// `repro --list`: subcommands, experiments and their grid parameters.
fn list() {
    println!("usage:");
    println!("  repro [--quick] [--seed N]                 run the full E1-E19 suite");
    println!("  repro <experiment> [--quick] [--seed N] [--shards N]");
    println!("        [--adaptive-shards] [--imbalance RATIO] [--patience WINDOWS] [--defenses TIER]");
    println!("        [--telemetry] [--shard-series] [--interval SECS] [--telemetry-jsonl PATH] [--profile]");
    println!("                                             run one experiment (slug or id);");
    println!("                                             --shards selects the parallel engine (E17/E18);");
    println!("                                             --adaptive-shards enables density-adaptive partitions");
    println!("                                             (E18; --imbalance / --patience tune the rebalance gate);");
    println!("                                             --defenses off|sanity|auth pins E19's security tier;");
    println!("                                             --telemetry records virtual-time series (stderr roll-up,");
    println!(
        "                                             JSONL side file; --shard-series adds per-shard load gauges),"
    );
    println!("                                             --profile prints the per-phase breakdown");
    println!("  repro watch <experiment> [--quick] [--seed N] [--shards N] [--interval SECS]");
    println!("                                             live mode: stream sampled frames to stderr while running");
    println!("  repro sweep <experiment> [--seeds N] [--seed BASE] [--threads N]");
    println!("        [--grid k=v1,v2,...]... [--quick] [--json PATH]");
    println!("                                             multi-seed statistical campaign");
    println!("  repro --list                               this overview");
    println!();
    println!("experiments:");
    for experiment in registry() {
        println!(
            "  {:4} {:18} {}",
            experiment.id(),
            experiment.slug(),
            experiment.title()
        );
        for p in experiment.params() {
            println!("         --grid {:18} {}", p.key, p.description);
        }
    }
}
