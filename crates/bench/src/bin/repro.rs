//! Regenerates every figure-level result of the thesis' evaluation.
//!
//! ```text
//! cargo run -p bench --release --bin repro                    # full run (EXPERIMENTS.md sizes)
//! cargo run -p bench --release --bin repro -- --quick         # reduced sizes
//! cargo run -p bench --release --bin repro -- churn           # only the E13 churn table
//! cargo run -p bench --release --bin repro -- churn --quick --seed 13
//! cargo run -p bench --release --bin repro -- metropolis --quick   # only the E15 table
//! ```
//!
//! The output is the markdown recorded in `EXPERIMENTS.md`.

use scenarios::experiments::{e13_churn_sweep, e15_full_stack_metropolis, ChurnSettings, MetropolisSettings};
use scenarios::{run_all, Effort};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let effort = if quick { Effort::Quick } else { Effort::Full };
    let seed = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|s| s.parse().ok());
    if std::env::args().any(|a| a == "metropolis") {
        // Regenerate only the E15 full-stack metropolis table.
        let mut settings = match effort {
            Effort::Quick => MetropolisSettings::quick(),
            Effort::Full => MetropolisSettings::full(),
        };
        if let Some(seed) = seed {
            settings.seed = seed;
        }
        eprintln!(
            "running the E15 full-stack metropolis ({} nodes, seed {}, {effort:?}) ...",
            settings.nodes, settings.seed
        );
        println!("{}", e15_full_stack_metropolis(&settings));
        return;
    }
    if std::env::args().any(|a| a == "churn") {
        // Regenerate only the E13 churn table from a seed.
        let mut settings = match effort {
            Effort::Quick => ChurnSettings::quick(),
            Effort::Full => ChurnSettings::full(),
        };
        if let Some(seed) = seed {
            settings.seed = seed;
        }
        eprintln!("running the E13 churn sweep (seed {}, {effort:?}) ...", settings.seed);
        println!("{}", e13_churn_sweep(&settings));
        return;
    }
    let seed = seed.unwrap_or(20080815u64);
    eprintln!("running the E1-E14 experiment suite (seed {seed}, {effort:?}) ...");
    let reports = run_all(seed, effort);
    for report in &reports {
        println!("{report}");
        println!();
        eprintln!("  finished {}", report.id);
    }
}
