//! Regenerates every figure-level result of the thesis' evaluation.
//!
//! ```text
//! cargo run -p bench --release --bin repro            # full run (EXPERIMENTS.md sizes)
//! cargo run -p bench --release --bin repro -- --quick # reduced sizes
//! ```
//!
//! The output is the markdown recorded in `EXPERIMENTS.md`.

use scenarios::{run_all, Effort};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let effort = if quick { Effort::Quick } else { Effort::Full };
    let seed = std::env::args()
        .skip_while(|a| a != "--seed")
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20080815u64);
    eprintln!("running the E1-E12 experiment suite (seed {seed}, {effort:?}) ...");
    let reports = run_all(seed, effort);
    for report in &reports {
        println!("{report}");
        println!();
        eprintln!("  finished {}", report.id);
    }
}
