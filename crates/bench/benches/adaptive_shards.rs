//! Static vs density-adaptive sharding under a flash crowd — the
//! measurement behind E18, and proof the partition changes only the clock.
//!
//! One hotspot-metropolis city (most devices and traffic in one district),
//! run to completion at 1, 2, 4 and 8 shards with the equal-width static
//! stripes of PR 7 and again with the density-adaptive partition on. Every
//! run — any shard count, either partitioner — must produce the **same
//! digest**; that check always runs, on any machine. The performance claim
//! (adaptive beats static once there are cores to balance across) is only
//! meaningful on multi-core hardware, so the assert arms itself at 4+ CPUs
//! and `BENCH_NO_ASSERT=1` disarms it for noisy environments.
//!
//! Output: a markdown table on stdout and `BENCH_adaptive_shards.json`
//! (override the path with `BENCH_ADAPTIVE_SHARDS_OUT`), uploaded by CI.

use std::time::Instant;

use scenarios::experiments::{hotspot_metropolis_run, sharded_world_digest, HotspotSettings};
use simnet::prelude::*;

/// One full run: wall-clock seconds, the run digest, and how many
/// barrier-time rebalances the adaptive partitioner fired.
fn run_once(base: &HotspotSettings, shards: usize, adaptive: bool) -> (f64, u64, u64) {
    let mut settings = base.clone();
    settings.shards = shards;
    settings.adaptive = adaptive;
    let start = Instant::now();
    let world = hotspot_metropolis_run(&settings);
    let wall = start.elapsed().as_secs_f64();
    (wall, sharded_world_digest(&world), world.partition_stats().rebalances)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("BENCH_QUICK").is_some();
    let mut base = if quick {
        HotspotSettings::quick()
    } else {
        HotspotSettings::full()
    };
    if quick {
        // The invariance claim does not need the full 100k crowd eight
        // times over; a smaller city keeps CI fast while still exercising
        // the rebalance path (the crowd skew is relative, not absolute).
        base.nodes = 20_000;
        base.duration = SimDuration::from_secs(30);
    }
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let shard_counts: &[usize] = &[1, 2, 4, 8];

    println!("### bench group `adaptive_shards`");
    println!();
    println!(
        "{} nodes ({:.0}% in the hotspot district), {}s simulated, {} cores available",
        base.nodes,
        base.crowd_fraction * 100.0,
        base.duration.as_secs(),
        cores
    );
    println!();
    println!("| shards | static wall (s) | adaptive wall (s) | adaptive/static | rebalances | digest |");
    println!("|---|---|---|---|---|---|");
    let mut rows: Vec<(usize, f64, f64, u64, u64)> = Vec::new();
    for &shards in shard_counts {
        let (static_wall, static_digest, _) = run_once(&base, shards, false);
        let (adaptive_wall, adaptive_digest, rebalances) = run_once(&base, shards, true);
        assert_eq!(
            static_digest, adaptive_digest,
            "adaptivity changed the results at {shards} shards — the partition leaked into observables"
        );
        eprintln!(
            "  adaptive_shards/{shards}: static {static_wall:.2}s, adaptive {adaptive_wall:.2}s, \
             {rebalances} rebalance(s), digest {static_digest:016x}"
        );
        rows.push((shards, static_wall, adaptive_wall, rebalances, static_digest));
    }
    for &(shards, static_wall, adaptive_wall, rebalances, digest) in &rows {
        println!(
            "| {shards} | {static_wall:.2} | {adaptive_wall:.2} | {:.2} | {rebalances} | {digest:016x} |",
            adaptive_wall / static_wall.max(f64::MIN_POSITIVE)
        );
    }
    println!();

    // The determinism claim holds on any machine, loaded or not: the
    // partition — static or adaptive, any width — is pure load placement.
    // These asserts are never disarmed.
    let reference = rows[0].4;
    for &(shards, .., digest) in &rows {
        assert_eq!(
            digest, reference,
            "digest at {shards} shards diverged from the 1-shard reference — shard count leaked into results"
        );
    }
    // Nor may the claim be vacuous: the flash crowd must actually trip the
    // hysteresis gate wherever there is more than one stripe to balance.
    for &(shards, .., rebalances, _) in &rows {
        assert!(
            shards == 1 || rebalances > 0,
            "no rebalance fired at {shards} shards — the hotspot is not skewed enough to measure"
        );
    }

    // Emit the JSON artifact (hand-rolled: serde is stubbed offline).
    let path = std::env::var("BENCH_ADAPTIVE_SHARDS_OUT").unwrap_or_else(|_| "BENCH_adaptive_shards.json".to_string());
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"nodes\": {},\n  \"crowd_fraction\": {},\n  \"sim_seconds\": {},\n  \"cores\": {cores},\n  \"digest\": \"{reference:016x}\",\n  \"rows\": [\n",
        base.nodes,
        base.crowd_fraction,
        base.duration.as_secs()
    ));
    for (i, (shards, static_wall, adaptive_wall, rebalances, _)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {shards}, \"static_wall_seconds\": {static_wall:.3}, \
             \"adaptive_wall_seconds\": {adaptive_wall:.3}, \"rebalances\": {rebalances}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&path, &json).expect("write BENCH_adaptive_shards.json");
    eprintln!("  wrote {path}");

    // The balancing claim needs cores to balance across: with the crowd in
    // one district, equal-width stripes leave most workers idle each
    // window, so the adaptive partition must win at 4 shards on a 4+-core
    // runner. Single-core machines verify determinism above but skip this.
    if std::env::var_os("BENCH_NO_ASSERT").is_none() && cores >= 4 {
        let row = |s: usize| {
            let r = rows.iter().find(|(n, ..)| *n == s).expect("row");
            (r.1, r.2)
        };
        let (static_wall, adaptive_wall) = row(4);
        assert!(
            adaptive_wall < static_wall,
            "adaptive sharding must beat static stripes at 4 shards on a {cores}-core machine: \
             static={static_wall:.2}s adaptive={adaptive_wall:.2}s"
        );
    } else if cores < 4 {
        eprintln!("  ({cores} cores: adaptive-vs-static assert skipped, digest invariance verified)");
    }
}
