//! Microbenchmark: wire codec encode/decode throughput.

use bench::harness::{bb, Group};
use peerhood::device::{DeviceInfo, MobilityClass};
use peerhood::ids::{ConnectionId, DeviceAddress};
use peerhood::proto::{Message, NeighborRecord};
use peerhood::service::ServiceInfo;
use peerhood::wire::{decode, encode};
use simnet::{NodeId, RadioTech};

fn inquiry_response(neighbors: usize) -> Message {
    let device = |n: u64| {
        DeviceInfo::new(
            NodeId::from_raw(n),
            format!("dev{n}"),
            MobilityClass::Hybrid,
            &[RadioTech::Bluetooth],
        )
    };
    Message::InquiryResponse {
        device: device(0),
        services: vec![ServiceInfo::new("echo", "v1", 2)],
        neighbors: (1..=neighbors as u64)
            .map(|n| NeighborRecord {
                info: device(n),
                jumps: (n % 4) as u8,
                hop_qualities: vec![240, 231, 250],
                services: vec![ServiceInfo::new("svc", "", n as u16)].into(),
            })
            .collect(),
        bridge_load_percent: 25,
    }
}

fn main() {
    let mut group = Group::new("wire");
    group.sample_size(1000);
    for &n in &[1usize, 16, 64] {
        let message = inquiry_response(n);
        let frame = encode(&message);
        group.bench(format!("encode_inquiry_response_{n}_neighbors"), || {
            encode(bb(&message))
        });
        group.bench(format!("decode_inquiry_response_{n}_neighbors"), || {
            decode(bb(&frame)).unwrap()
        });
    }
    let data = Message::Data {
        conn_id: ConnectionId::new(DeviceAddress::from_node_raw(1), 1),
        payload: vec![0xAB; 32 * 1024],
    };
    group.bench("encode_32k_data", || encode(bb(&data)));
    group.finish();
}
