//! Cost of the fault-injection hooks.
//!
//! Two measurements per population size:
//!
//! * `sim_no_faults_*` — the E12-style discovery simulation with no fault
//!   plan installed. This is the price a fault-free world pays for the
//!   subsystem's existence: the hooks reduce to emptiness checks and the
//!   run must stay within noise of the pre-faults (PR 2) baseline.
//! * `sim_churn_*` — the same world with a seeded churn plan on every
//!   node, as a reference for what fault processing itself costs.
//!
//! A byte-identity assertion runs alongside: a zero-plan world's metrics
//! must be identical to a second zero-plan run (hooks draw no randomness).

use std::any::Any;

use bench::harness::{bb, Group};
use simnet::prelude::*;

const SCAN: TimerToken = TimerToken(9);

struct Beacon {
    interval: SimDuration,
}

impl NodeAgent for Beacon {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let jitter = SimDuration::from_millis(ctx.rng().range(0..self.interval.as_millis().max(1)));
        ctx.schedule(jitter, SCAN);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: TimerToken) {
        ctx.start_inquiry(RadioTech::Bluetooth);
        ctx.schedule(self.interval, SCAN);
    }
}

/// Constant-density city of scanning devices (the `world_scale` world).
fn build_world(nodes: usize, seed: u64) -> World {
    let side = (nodes as f64 / 2_000.0 * 1_000_000.0).sqrt();
    let mut world = World::new(WorldConfig::with_seed(seed));
    let area = Rect::square(side);
    let mut placer = SimRng::new(seed ^ 0xFA17);
    for i in 0..nodes {
        let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
        let mobility = if i % 4 == 0 {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.7,
                max_speed_mps: 2.0,
                pause: SimDuration::from_secs(15),
            }
        } else {
            MobilityModel::stationary(start)
        };
        world.add_node(
            format!("n{i}"),
            mobility,
            &[RadioTech::Bluetooth],
            Box::new(Beacon {
                interval: SimDuration::from_secs(10),
            }),
        );
    }
    world
}

fn install_churn(world: &mut World, seed: u64) {
    let planner = SimRng::new(seed ^ 0xC4A5);
    let horizon = SimTime::from_secs(40);
    for (i, node) in world.node_ids().collect::<Vec<_>>().into_iter().enumerate() {
        let mut rng = planner.derive(i as u64);
        let plan = FaultPlan::churn(horizon, SimDuration::from_secs(30), SimDuration::from_secs(5), &mut rng);
        world.install_fault_plan(node, plan);
    }
}

fn main() {
    let mut group = Group::new("faults_overhead");
    group.sample_size(5);
    for &nodes in &[250usize, 1_000] {
        group.bench(format!("sim_no_faults_{nodes}_20s"), || {
            let mut w = build_world(bb(nodes), 20080815);
            w.run_for(SimDuration::from_secs(20));
            w.metrics().global().inquiries_started
        });
        group.bench(format!("sim_churn_{nodes}_20s"), || {
            let mut w = build_world(bb(nodes), 20080815);
            install_churn(&mut w, 20080815);
            w.run_for(SimDuration::from_secs(20));
            w.metrics().global().inquiries_started + w.fault_stats().crashes
        });
    }
    // Zero-plan runs must be bit-for-bit reproducible: the hooks draw no
    // randomness and change no event ordering.
    let run = |seed| {
        let mut w = build_world(250, seed);
        w.run_for(SimDuration::from_secs(20));
        *w.metrics().global()
    };
    assert_eq!(run(7), run(7), "zero-fault worlds must reproduce exactly");
    eprintln!("  (zero-plan reproducibility checked at 250 nodes)");
    group.finish();
}
