//! Node-count sweeps over the spatially-indexed world.
//!
//! Two measurements per population size at constant density:
//!
//! * `neighbors_grid_*` vs `neighbors_scan_*` — the same neighbourhood
//!   queries answered through the grid index and through the full-scan
//!   reference oracle. The grid must win, and grow sublinearly, from
//!   ~1k nodes.
//! * `discovery_sim_*` — wall-clock cost of a simulated slice in which every
//!   device runs periodic inquiries, i.e. the end-to-end event loop on the
//!   discovery hot path.

use std::any::Any;

use bench::harness::{bb, Group};
use simnet::prelude::*;

const SCAN: TimerToken = TimerToken(7);

/// A device that scans its neighbourhood periodically.
struct Beacon {
    interval: SimDuration,
}

impl NodeAgent for Beacon {
    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let jitter = SimDuration::from_millis(ctx.rng().range(0..self.interval.as_millis().max(1)));
        ctx.schedule(jitter, SCAN);
    }
    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, _token: TimerToken) {
        ctx.start_inquiry(RadioTech::Bluetooth);
        ctx.schedule(self.interval, SCAN);
    }
}

/// Builds a constant-density (2000 nodes/km^2) city of scanning devices,
/// one quarter of them mobile.
fn build_world(nodes: usize, seed: u64) -> World {
    let side = (nodes as f64 / 2_000.0 * 1_000_000.0).sqrt();
    let mut world = World::new(WorldConfig::with_seed(seed));
    let area = Rect::square(side);
    let mut placer = SimRng::new(seed ^ 0xBE47);
    for i in 0..nodes {
        let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
        let mobility = if i % 4 == 0 {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.7,
                max_speed_mps: 2.0,
                pause: SimDuration::from_secs(15),
            }
        } else {
            MobilityModel::stationary(start)
        };
        world.add_node(
            format!("n{i}"),
            mobility,
            &[RadioTech::Bluetooth],
            Box::new(Beacon {
                interval: SimDuration::from_secs(10),
            }),
        );
    }
    world
}

fn main() {
    let mut group = Group::new("world_scale");
    group.sample_size(5);
    for &nodes in &[250usize, 1_000, 4_000] {
        // Advance the world a little so mobile nodes have left their initial
        // cells before the queries are measured.
        let mut world = build_world(nodes, 20080815);
        world.run_for(SimDuration::from_secs(30));
        let ids: Vec<NodeId> = world.node_ids().step_by((nodes / 200).max(1)).collect();

        let mut consistency = 0usize;
        group.bench(format!("neighbors_grid_{nodes}"), || {
            ids.iter()
                .map(|id| world.neighbors_in_range(bb(*id), RadioTech::Bluetooth).len())
                .sum::<usize>()
        });
        group.bench(format!("neighbors_scan_{nodes}"), || {
            ids.iter()
                .map(|id| world.neighbors_in_range_reference(bb(*id), RadioTech::Bluetooth).len())
                .sum::<usize>()
        });
        // The two paths must agree bit-for-bit; a bench that silently
        // measured diverging implementations would be meaningless.
        for id in &ids {
            assert_eq!(
                world.neighbors_in_range(*id, RadioTech::Bluetooth),
                world.neighbors_in_range_reference(*id, RadioTech::Bluetooth),
            );
            consistency += 1;
        }
        eprintln!("  (grid/scan agreement checked on {consistency} nodes)");

        group.bench(format!("discovery_sim_{nodes}_20s"), || {
            let mut w = build_world(bb(nodes), 7);
            w.run_for(SimDuration::from_secs(20));
            w.metrics().global().inquiries_started
        });
    }
    group.finish();
}
