//! E9 benchmark: one picture-analysis migration run per regime (§5.3).

use bench::harness::{bb, Group};
use migration::TaskSpec;
use scenarios::experiments::migration_run;

fn main() {
    let mut group = Group::new("result_routing");
    group.sample_size(10);
    group.bench("small_regime", || migration_run(bb(1), "small", TaskSpec::small()));
    group.bench("considerable_regime", || {
        migration_run(bb(2), "considerable", TaskSpec::considerable())
    });
    group.finish();
}
