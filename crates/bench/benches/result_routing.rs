//! E9 benchmark: one picture-analysis migration run per regime (§5.3).

use criterion::{criterion_group, criterion_main, Criterion};
use migration::TaskSpec;
use scenarios::experiments::migration_run;

fn bench_result_routing(c: &mut Criterion) {
    let mut group = c.benchmark_group("result_routing");
    group.sample_size(10);
    group.bench_function("small_regime", |b| {
        b.iter(|| migration_run(std::hint::black_box(1), "small", TaskSpec::small()))
    });
    group.bench_function("considerable_regime", |b| {
        b.iter(|| migration_run(std::hint::black_box(2), "considerable", TaskSpec::considerable()))
    });
    group.finish();
}

criterion_group!(benches, bench_result_routing);
criterion_main!(benches);
