//! Wall-clock cost of the frame-authentication defence tier.
//!
//! The E19 hostile-city scorecard shows `defenses=auth` shutting route
//! poisoning down completely; this bench answers the follow-up question
//! Trusted-HB poses for resource-constrained devices — what does that
//! immunity *cost* on a peaceful network? Two full-stack metropolis cities
//! run side by side, identical except for `SecurityConfig`: one with every
//! defence off (the thesis' stack) and one with the keyed seq+MAC trailer
//! plus replay windows on every frame.
//!
//! Method mirrors `full_stack_scale`: warm both worlds past the first
//! discovery wave, then time steady-state slices **interleaved**, reporting
//! the per-world minimum and the minimum per-pair ratio (back-to-back pairs
//! see machine noise roughly equally, so it cancels in the ratio).
//!
//! Output: a markdown table on stdout and `BENCH_adversary.json` (override
//! the path with `BENCH_ADVERSARY_OUT`), uploaded by CI as an artifact.
//! The budget assert: frame auth must stay within **10%** of the undefended
//! wall clock at 2k nodes (disarm with `BENCH_NO_ASSERT=1`).

use std::rc::Rc;
use std::time::Instant;

use peerhood::config::SecurityConfig;
use scenarios::experiments::full_stack::{metro_configs, FullStackHost};
use simnet::prelude::*;

fn build_city(nodes: usize, seed: u64, security: SecurityConfig) -> World {
    let side = (nodes as f64 / 2_000.0 * 1_000_000.0).sqrt();
    let mut config = WorldConfig::with_seed(seed ^ (nodes as u64));
    config.grid_cell_m = config.radio.wlan.range_m;
    let mut world = World::new(config);
    let area = Rect::square(side);
    let (static_base, mobile_base) = metro_configs(SimDuration::from_secs(10));
    let mut static_cfg = (*static_base).clone();
    static_cfg.security = security.clone();
    let static_cfg = Rc::new(static_cfg);
    let mut mobile_cfg = (*mobile_base).clone();
    mobile_cfg.security = security;
    let mobile_cfg = Rc::new(mobile_cfg);
    let mut placer = SimRng::new(seed ^ 0xF57A7E ^ (nodes as u64));
    for i in 0..nodes {
        let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
        let mobility = if i % 4 == 0 {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.7,
                max_speed_mps: 2.0,
                pause: SimDuration::from_secs(20),
            }
        } else {
            MobilityModel::stationary(start)
        };
        let cfg = if i % 4 == 0 { &mobile_cfg } else { &static_cfg };
        world.add_node(
            format!("n{i}"),
            mobility,
            &[RadioTech::Wlan],
            Box::new(FullStackHost::new(Rc::clone(cfg))),
        );
    }
    world
}

fn time_slice(world: &mut World, slice_s: u64) -> f64 {
    let start = Instant::now();
    world.run_for(SimDuration::from_secs(slice_s));
    start.elapsed().as_secs_f64()
}

/// Warm + interleave-time the undefended and frame-auth cities; returns
/// (best plain wall, best auth wall, best per-pair ratio) for the slices.
fn measure_pair(nodes: usize, warmup_s: u64, slice_s: u64, slices: u32) -> (f64, f64, f64) {
    let mut plain = build_city(nodes, 20080815, SecurityConfig::off());
    let mut auth = build_city(nodes, 20080815, SecurityConfig::auth());
    plain.run_for(SimDuration::from_secs(warmup_s));
    auth.run_for(SimDuration::from_secs(warmup_s));
    let (mut best_plain, mut best_auth, mut best_ratio) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..slices.max(1) {
        let p = time_slice(&mut plain, slice_s);
        let a = time_slice(&mut auth, slice_s);
        best_plain = best_plain.min(p);
        best_auth = best_auth.min(a);
        best_ratio = best_ratio.min(a / p.max(f64::MIN_POSITIVE));
    }
    // The comparison is only meaningful if the auth city actually pays the
    // MAC on its traffic: every node must have authenticated frames, and
    // none may be rejecting them (same key everywhere, no adversary).
    let (mut authenticated, mut rejected) = (0u64, 0u64);
    for node in auth.node_ids().collect::<Vec<_>>() {
        let stats = auth
            .with_agent::<FullStackHost, _>(node, |host, _| host.node().security_stats())
            .unwrap_or_default();
        authenticated += stats.frames_authenticated;
        rejected += stats.auth_rejected;
    }
    assert!(
        authenticated > nodes as u64,
        "auth city at {nodes} nodes authenticated only {authenticated} frames — the defence is not on the data path"
    );
    assert_eq!(rejected, 0, "peaceful auth city rejected {rejected} frames");
    (best_plain, best_auth, best_ratio)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("BENCH_QUICK").is_some();
    let (warmup_s, slice_s, slices) = if quick { (40, 10, 4) } else { (40, 15, 4) };
    let populations: &[usize] = if quick { &[2_000] } else { &[1_000, 2_000, 4_000] };

    println!("### bench group `adversary_overhead`");
    println!();
    println!("| nodes | defenses off (wall s/slice) | frame auth (wall s/slice) | ratio |");
    println!("|---|---|---|---|");
    let mut rows = Vec::new();
    for &nodes in populations {
        let (plain, auth, ratio) = measure_pair(nodes, warmup_s, slice_s, slices);
        eprintln!("  adversary_overhead/{nodes}: off {plain:.3}s, auth {auth:.3}s, ratio {ratio:.3}");
        println!("| {nodes} | {plain:.3} | {auth:.3} | {ratio:.3} |");
        rows.push((nodes, plain, auth, ratio));
    }
    println!();

    // Emit the JSON artifact (hand-rolled: serde is stubbed offline).
    let path = std::env::var("BENCH_ADVERSARY_OUT").unwrap_or_else(|_| "BENCH_adversary.json".to_string());
    let mut json = String::from("{\n  \"unit\": \"wall seconds per steady-state slice\",\n");
    json.push_str(&format!(
        "  \"warmup_sim_seconds\": {warmup_s},\n  \"measured_sim_seconds\": {slice_s},\n  \"rows\": [\n"
    ));
    for (i, (nodes, plain, auth, ratio)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nodes\": {nodes}, \"off_wall_seconds\": {plain:.4}, \
             \"auth_wall_seconds\": {auth:.4}, \"ratio\": {ratio:.4}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&path, &json).expect("write BENCH_adversary.json");
    eprintln!("  wrote {path}");

    // The immunity budget: the seq+MAC trailer must stay within 10% of the
    // undefended wall clock at 2k nodes. Overridable for noisy environments
    // with BENCH_NO_ASSERT=1.
    if std::env::var_os("BENCH_NO_ASSERT").is_none() {
        let at_2k = rows.iter().find(|(n, ..)| *n == 2_000).expect("2k row");
        assert!(
            at_2k.3 <= 1.10,
            "frame-auth wall-clock overhead at 2000 nodes exceeded the 10% budget: ratio {:.3}",
            at_2k.3
        );
    }
}
