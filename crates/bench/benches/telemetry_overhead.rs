//! Cost of the live telemetry plane.
//!
//! Three measurements over the same E12-style dense city:
//!
//! * `off` — the experiment exactly as the suite runs it;
//! * `record` — the recorder sampling every simulated second;
//! * `record+profile` — recording plus per-phase wall-clock profiling
//!   (reported for reference only: the profiler's two clock reads per event
//!   are the price of asking "where did the microseconds go", not part of
//!   the always-affordable recording plane).
//!
//! The plane's contract is "off by default, cheap when on": the report must
//! stay **byte-identical** with the recorder attached (asserted always, on
//! any machine), and the `record` wall time must stay within 10% of the
//! uninstrumented one (asserted unless `BENCH_NO_ASSERT=1`, using the best
//! of the samples so scheduler noise doesn't fail CI).
//!
//! Output: a markdown table on stdout and `BENCH_telemetry.json` (override
//! the path with `BENCH_TELEMETRY_OUT`), uploaded by CI as an artifact.

use std::time::Instant;

use scenarios::experiments::{e12_dense_city, ScaleSettings};
use scenarios::telemetry::{configure, take_captures, TelemetryMode, TelemetrySettings};
use simnet::SimDuration;

fn settings(quick: bool) -> ScaleSettings {
    let mut s = ScaleSettings::quick();
    if quick {
        s.node_counts = vec![400];
        s.duration = SimDuration::from_secs(60);
    } else {
        s.node_counts = vec![1_000];
        s.duration = SimDuration::from_secs(120);
    }
    s
}

/// One run in the given mode; returns (wall seconds, report markdown).
fn run_once(scale: &ScaleSettings, record: bool, profile: bool) -> (f64, String) {
    configure(TelemetrySettings {
        mode: if record {
            TelemetryMode::Record
        } else {
            TelemetryMode::Off
        },
        profile,
        ..TelemetrySettings::default()
    });
    let start = Instant::now();
    let report = e12_dense_city(scale);
    let wall = start.elapsed().as_secs_f64();
    let captures = take_captures();
    configure(TelemetrySettings::default());
    if record {
        assert!(!captures.is_empty(), "instrumented run must leave a capture");
        assert!(captures[0].frames > 0, "instrumented run must sample frames");
    } else if !profile {
        assert!(captures.is_empty(), "uninstrumented run must record nothing");
    }
    (wall, report.to_string())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("BENCH_QUICK").is_some();
    let scale = settings(quick);
    let samples = if quick { 3 } else { 5 };

    let mut walls_off: Vec<f64> = Vec::new();
    let mut walls_on: Vec<f64> = Vec::new();
    let mut walls_prof: Vec<f64> = Vec::new();
    let mut report_off = String::new();
    let mut report_on = String::new();
    for i in 0..samples {
        let (off, r_off) = run_once(&scale, false, false);
        let (on, r_on) = run_once(&scale, true, false);
        let (prof, r_prof) = run_once(&scale, true, true);
        eprintln!("  telemetry_overhead sample {i}: off {off:.3}s, record {on:.3}s, record+profile {prof:.3}s");
        assert_eq!(r_on, r_prof, "profiling changed the report");
        walls_off.push(off);
        walls_on.push(on);
        walls_prof.push(prof);
        report_off = r_off;
        report_on = r_on;
    }

    // Passivity is the non-negotiable half of the contract: recording must
    // not change a single report byte. This assert is never disarmed.
    assert_eq!(
        report_off, report_on,
        "telemetry-on report diverged from the uninstrumented run"
    );

    let best = |w: &[f64]| w.iter().copied().fold(f64::INFINITY, f64::min);
    let (best_off, best_on, best_prof) = (best(&walls_off), best(&walls_on), best(&walls_prof));
    let overhead = best_on / best_off.max(f64::MIN_POSITIVE) - 1.0;
    let overhead_prof = best_prof / best_off.max(f64::MIN_POSITIVE) - 1.0;

    println!("### bench group `telemetry_overhead`");
    println!();
    println!(
        "{} nodes, {}s simulated, {} sample(s), 1s sample interval + profiling",
        scale.node_counts[0],
        scale.duration.as_secs(),
        samples
    );
    println!();
    println!("| mode | best wall (s) | overhead |");
    println!("|---|---|---|");
    println!("| off | {best_off:.3} | - |");
    println!("| record | {best_on:.3} | {:.1}% |", overhead * 100.0);
    println!("| record+profile | {best_prof:.3} | {:.1}% |", overhead_prof * 100.0);
    println!();

    // Emit the JSON artifact (hand-rolled: serde is stubbed offline).
    let path = std::env::var("BENCH_TELEMETRY_OUT").unwrap_or_else(|_| "BENCH_telemetry.json".to_string());
    let json = format!(
        "{{\n  \"nodes\": {},\n  \"sim_seconds\": {},\n  \"samples\": {samples},\n  \
         \"wall_off_seconds\": {best_off:.3},\n  \"wall_on_seconds\": {best_on:.3},\n  \
         \"wall_profile_seconds\": {best_prof:.3},\n  \
         \"overhead_fraction\": {overhead:.4},\n  \"overhead_profile_fraction\": {overhead_prof:.4},\n  \
         \"report_identical\": true\n}}\n",
        scale.node_counts[0],
        scale.duration.as_secs()
    );
    std::fs::write(&path, &json).expect("write BENCH_telemetry.json");
    eprintln!("  wrote {path}");

    if std::env::var_os("BENCH_NO_ASSERT").is_none() {
        assert!(
            overhead <= 0.10,
            "recording wall overhead {:.1}% exceeds the 10% budget (off {best_off:.3}s, record {best_on:.3}s)",
            overhead * 100.0
        );
    }
}
