//! E2 benchmark: Gnutella flooding vs. PeerHood discovery traffic.

use criterion::{criterion_group, criterion_main, Criterion};
use peerhood::gnutella::{gnutella_full_search_messages, peerhood_cycle_messages, Topology};
use scenarios::topology::random_positions;

fn topology(nodes: usize) -> Topology {
    let positions = random_positions(nodes, (nodes as f64).sqrt() * 9.0, 7);
    let pairs: Vec<(f64, f64)> = positions.iter().map(|p| (p.x, p.y)).collect();
    Topology::from_positions(&pairs, 10.0)
}

fn bench_gnutella(c: &mut Criterion) {
    let mut group = c.benchmark_group("gnutella_vs_peerhood");
    group.sample_size(20);
    for &nodes in &[20usize, 80] {
        let topo = topology(nodes);
        group.bench_function(format!("gnutella_full_search_{nodes}"), |b| {
            b.iter(|| gnutella_full_search_messages(std::hint::black_box(&topo), 7))
        });
        group.bench_function(format!("peerhood_cycle_{nodes}"), |b| {
            b.iter(|| peerhood_cycle_messages(std::hint::black_box(&topo)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_gnutella);
criterion_main!(benches);
