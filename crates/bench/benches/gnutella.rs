//! E2 benchmark: Gnutella flooding vs. PeerHood discovery traffic.

use bench::harness::{bb, Group};
use peerhood::gnutella::{gnutella_full_search_messages, peerhood_cycle_messages, Topology};
use scenarios::topology::random_positions;

fn topology(nodes: usize) -> Topology {
    let positions = random_positions(nodes, (nodes as f64).sqrt() * 9.0, 7);
    let pairs: Vec<(f64, f64)> = positions.iter().map(|p| (p.x, p.y)).collect();
    Topology::from_positions(&pairs, 10.0)
}

fn main() {
    let mut group = Group::new("gnutella_vs_peerhood");
    group.sample_size(20);
    for &nodes in &[20usize, 80] {
        let topo = topology(nodes);
        group.bench(format!("gnutella_full_search_{nodes}"), || {
            gnutella_full_search_messages(bb(&topo), 7)
        });
        group.bench(format!("peerhood_cycle_{nodes}"), || peerhood_cycle_messages(bb(&topo)));
    }
    group.finish();
}
