//! E8 benchmark: one routing-handover simulation run (§5.2.1).

use bench::harness::{bb, Group};
use scenarios::experiments::routing_handover_run;

fn main() {
    let mut group = Group::new("routing_handover");
    group.sample_size(10);
    for &decay in &[1.0, 30.0] {
        let mut seed = 100u64;
        group.bench(format!("decay_{decay}_per_s"), || {
            seed += 1;
            routing_handover_run(bb(seed), decay)
        });
    }
    group.finish();
}
