//! E8 benchmark: one routing-handover simulation run (§5.2.1).

use criterion::{criterion_group, criterion_main, Criterion};
use scenarios::experiments::routing_handover_run;

fn bench_handover(c: &mut Criterion) {
    let mut group = c.benchmark_group("routing_handover");
    group.sample_size(10);
    for &decay in &[1.0, 30.0] {
        group.bench_function(format!("decay_{decay}_per_s"), |b| {
            let mut seed = 100u64;
            b.iter(|| {
                seed += 1;
                routing_handover_run(std::hint::black_box(seed), decay)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_handover);
criterion_main!(benches);
