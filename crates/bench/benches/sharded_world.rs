//! Wall-clock scaling of the sharded world across shard counts — and proof
//! that the shards change nothing but the wall clock.
//!
//! This is the measurement behind E17: one sharded-metropolis city, run to
//! completion at 1, 2, 4 and 8 shards. Every run must produce the **same
//! digest** (all counters, per-node tallies, lifecycle events — the digest
//! E17 prints in its report); the digest check always runs, on any machine.
//! The speedup column is only meaningful on multi-core hardware, so the
//! monotone-speedup assert (1 → 4 shards strictly faster) arms itself only
//! when the runner reports at least 4 CPUs, and `BENCH_NO_ASSERT=1`
//! disarms it for noisy environments.
//!
//! Output: a markdown table on stdout and `BENCH_sharded_world.json`
//! (override the path with `BENCH_SHARDED_WORLD_OUT`), uploaded by CI as
//! the scaling artifact.

use std::time::Instant;

use scenarios::experiments::{sharded_metropolis_run, sharded_world_digest, ShardedSettings};
use simnet::prelude::*;

/// One full run at the given shard count: wall-clock seconds plus the run
/// digest and headline counters for the invariance check.
fn run_once(base: &ShardedSettings, shards: usize) -> (f64, u64, Counters) {
    let mut settings = base.clone();
    settings.shards = shards;
    let start = Instant::now();
    let world = sharded_metropolis_run(&settings);
    let wall = start.elapsed().as_secs_f64();
    (wall, sharded_world_digest(&world), *world.metrics().global())
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("BENCH_QUICK").is_some();
    let mut base = if quick {
        ShardedSettings::quick()
    } else {
        ShardedSettings::full()
    };
    if quick {
        // The invariance claim does not need the full 100k city four times
        // over; a fifth of it keeps CI fast while still exercising every
        // cross-shard path (migration, handshakes, data, churn).
        base.nodes = 20_000;
        base.duration = SimDuration::from_secs(40);
    }
    let cores = std::thread::available_parallelism().map(usize::from).unwrap_or(1);
    let shard_counts: &[usize] = &[1, 2, 4, 8];

    println!("### bench group `sharded_world`");
    println!();
    println!(
        "{} nodes, {}s simulated, {} cores available",
        base.nodes,
        base.duration.as_secs(),
        cores
    );
    println!();
    println!("| shards | wall (s) | speedup vs 1 | digest |");
    println!("|---|---|---|---|");
    let mut rows: Vec<(usize, f64, u64)> = Vec::new();
    for &shards in shard_counts {
        let (wall, digest, global) = run_once(&base, shards);
        eprintln!(
            "  sharded_world/{shards}: {wall:.2}s, digest {digest:016x}, {} links, {} msgs",
            global.connects_established, global.messages_delivered
        );
        rows.push((shards, wall, digest));
    }
    let base_wall = rows[0].1;
    for &(shards, wall, digest) in &rows {
        println!(
            "| {shards} | {wall:.2} | {:.2} | {digest:016x} |",
            base_wall / wall.max(f64::MIN_POSITIVE)
        );
    }
    println!();

    // The determinism claim holds on any machine, loaded or not: shard
    // count is pure load partitioning. This assert is never disarmed.
    let reference = rows[0].2;
    for &(shards, _, digest) in &rows {
        assert_eq!(
            digest, reference,
            "digest at {shards} shards diverged from the 1-shard reference — shard count leaked into results"
        );
    }

    // Emit the JSON artifact (hand-rolled: serde is stubbed offline).
    let path = std::env::var("BENCH_SHARDED_WORLD_OUT").unwrap_or_else(|_| "BENCH_sharded_world.json".to_string());
    let mut json = String::from("{\n");
    json.push_str(&format!(
        "  \"nodes\": {},\n  \"sim_seconds\": {},\n  \"cores\": {cores},\n  \"digest\": \"{reference:016x}\",\n  \"rows\": [\n",
        base.nodes,
        base.duration.as_secs()
    ));
    for (i, (shards, wall, _)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"shards\": {shards}, \"wall_seconds\": {wall:.3}, \"speedup\": {:.3}}}{}\n",
            base_wall / wall.max(f64::MIN_POSITIVE),
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&path, &json).expect("write BENCH_sharded_world.json");
    eprintln!("  wrote {path}");

    // The scaling claim needs cores to scale onto. On a multi-core runner
    // the 1 → 2 → 4 shard curve must be strictly faster at every step;
    // single-core machines still verify determinism above but skip this.
    if std::env::var_os("BENCH_NO_ASSERT").is_none() && cores >= 4 {
        let wall_at = |s: usize| rows.iter().find(|(n, ..)| *n == s).expect("row").1;
        assert!(
            wall_at(2) < wall_at(1) && wall_at(4) < wall_at(2),
            "speedup must increase strictly from 1 to 4 shards on a {cores}-core machine: \
             1={:.2}s 2={:.2}s 4={:.2}s",
            wall_at(1),
            wall_at(2),
            wall_at(4)
        );
    } else if cores < 4 {
        eprintln!("  ({cores} cores: speedup assert skipped, digest invariance verified)");
    }
}
