//! E1 benchmark: simulated discovery convergence per mode (wall-clock cost of
//! one full convergence run of the event-driven simulation).

use bench::harness::{bb, Group};
use peerhood::config::DiscoveryMode;
use peerhood::device::MobilityClass;
use peerhood::node::PeerHoodNode;
use scenarios::topology::{experiment_config, random_positions, spawn_relay};
use simnet::prelude::*;

fn converge(mode: DiscoveryMode, nodes: usize) -> usize {
    let mut world = World::new(WorldConfig::ideal(11));
    let ids: Vec<NodeId> = random_positions(nodes, 40.0, 11)
        .into_iter()
        .enumerate()
        .map(|(i, p)| {
            spawn_relay(
                &mut world,
                experiment_config(format!("n{i}"), MobilityClass::Static, mode),
                p,
            )
        })
        .collect();
    world.run_for(SimDuration::from_secs(120));
    ids.iter()
        .map(|id| {
            world
                .with_agent::<PeerHoodNode, _>(*id, |n, _| n.storage_stats().known_devices)
                .unwrap()
        })
        .sum()
}

fn main() {
    let mut group = Group::new("discovery_convergence");
    group.sample_size(10);
    for mode in [DiscoveryMode::DirectOnly, DiscoveryMode::TwoHop, DiscoveryMode::Dynamic] {
        group.bench(format!("{mode}_10_nodes_120s"), || converge(bb(mode), 10));
    }
    group.finish();
}
