//! E6 benchmark: one full bridge-connection trial under the realistic radio
//! model (Fig. 4.5).

use bench::harness::{bb, Group};
use scenarios::experiments::bridge_trial;

fn main() {
    let mut group = Group::new("bridge_trial");
    group.sample_size(10);
    let mut seed = 0u64;
    group.bench("client_bridge_server_20_messages", || {
        seed += 1;
        bridge_trial(bb(seed))
    });
    group.finish();
}
