//! E6 benchmark: one full bridge-connection trial under the realistic radio
//! model (Fig. 4.5).

use criterion::{criterion_group, criterion_main, Criterion};
use scenarios::experiments::bridge_trial;

fn bench_bridge(c: &mut Criterion) {
    let mut group = c.benchmark_group("bridge_trial");
    group.sample_size(10);
    group.bench_function("client_bridge_server_20_messages", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            bridge_trial(std::hint::black_box(seed))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_bridge);
criterion_main!(benches);
