//! Per-node step cost of the **full PeerHood middleware** vs. the
//! lightweight probe agent, at 250→4000 nodes.
//!
//! This is the budget behind the E15 metropolis: the refactored data path
//! (zero-copy frames, shared payloads, cached advertisement frames,
//! allocation-lean storage) must keep a real middleware node within a small
//! constant factor of the bare probe the scale experiments used to run.
//!
//! Method: build a constant-density WLAN city, warm it up past the first
//! discovery wave (fetch storms are start-up cost, not steady state), then
//! time a measured slice of simulated seconds. The reported unit is
//! **ns / node / simulated second**.
//!
//! Output: a markdown table on stdout and `BENCH_full_stack.json` (override
//! the path with `BENCH_FULL_STACK_OUT`), consumed by CI as an artifact —
//! the start of the perf trajectory.

use std::rc::Rc;
use std::time::Instant;

use scenarios::experiments::full_stack::{metro_configs, FullStackHost};
use scenarios::experiments::CityAgent;
use simnet::prelude::*;

fn build_city(nodes: usize, seed: u64, full: bool) -> World {
    let side = (nodes as f64 / 2_000.0 * 1_000_000.0).sqrt();
    let mut config = WorldConfig::with_seed(seed ^ (nodes as u64));
    config.grid_cell_m = config.radio.wlan.range_m;
    let mut world = World::new(config);
    let area = Rect::square(side);
    let (static_cfg, mobile_cfg) = metro_configs(SimDuration::from_secs(10));
    let mut placer = SimRng::new(seed ^ 0xF57A7E ^ (nodes as u64));
    for i in 0..nodes {
        let start = Point::new(placer.uniform_f64(0.0, side), placer.uniform_f64(0.0, side));
        let mobility = if i % 4 == 0 {
            MobilityModel::RandomWaypoint {
                area,
                start,
                min_speed_mps: 0.7,
                max_speed_mps: 2.0,
                pause: SimDuration::from_secs(20),
            }
        } else {
            MobilityModel::stationary(start)
        };
        let agent: Box<dyn NodeAgent> = if full {
            let cfg = if i % 4 == 0 { &mobile_cfg } else { &static_cfg };
            Box::new(FullStackHost::new(Rc::clone(cfg)))
        } else {
            // The lightweight probe E12 runs (scan, attach,
            // quality-threshold handover), carrying the same offered data
            // load as the full stack's session pings — the baseline the
            // middleware's per-node cost is budgeted against.
            Box::new(CityAgent::with_pings(
                SimDuration::from_secs(10),
                SimDuration::from_secs(10),
            ))
        };
        world.add_node(format!("n{i}"), mobility, &[RadioTech::Wlan], agent);
    }
    world
}

/// Times one further steady-state slice of a pre-warmed world, in ns per
/// node per simulated second.
fn time_slice(world: &mut World, nodes: usize, slice_s: u64) -> f64 {
    let start = Instant::now();
    world.run_for(SimDuration::from_secs(slice_s));
    start.elapsed().as_nanos() as f64 / (nodes as f64 * slice_s as f64)
}

/// Measures the lightweight and full-stack city as an **interleaved** pair:
/// both worlds are built and warmed past the first discovery/fetch wave,
/// then their steady-state slices are timed alternately. Two noise guards:
/// the reported per-world cost is the minimum over its slices, and the
/// reported *ratio* is the minimum over per-pair ratios (each pair runs
/// back-to-back, so machine load hits both sides of a pair roughly equally
/// and cancels — min-of-independent-minima does not have that property on
/// a noisy shared runner).
fn measure_pair(nodes: usize, warmup_s: u64, slice_s: u64, slices: u32) -> (f64, f64, f64) {
    let mut light_world = build_city(nodes, 20080815, false);
    let mut full_world = build_city(nodes, 20080815, true);
    light_world.run_for(SimDuration::from_secs(warmup_s));
    full_world.run_for(SimDuration::from_secs(warmup_s));
    let (mut light, mut full, mut ratio) = (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..slices.max(1) {
        let l = time_slice(&mut light_world, nodes, slice_s);
        let f = time_slice(&mut full_world, nodes, slice_s);
        light = light.min(l);
        full = full.min(f);
        ratio = ratio.min(f / l.max(f64::MIN_POSITIVE));
    }
    (light, full, ratio)
}

fn main() {
    let quick = std::env::args().any(|a| a == "--quick") || std::env::var_os("BENCH_QUICK").is_some();
    // Quick mode keeps the full warmup and 4 interleaved slices: the budget
    // assert keys off the per-world minimum, and a steady starting point
    // plus more slices are what make that minimum (and therefore the ratio)
    // stable on noisy shared runners.
    let (warmup_s, slice_s, slices) = if quick { (40, 10, 4) } else { (40, 15, 4) };
    let populations: &[usize] = &[250, 1_000, 2_000, 4_000];

    println!("### bench group `full_stack_scale`");
    println!();
    println!("| nodes | lightweight (ns/node/step) | full stack (ns/node/step) | ratio |");
    println!("|---|---|---|---|");
    let mut rows = Vec::new();
    for &nodes in populations {
        let (light, full, ratio) = measure_pair(nodes, warmup_s, slice_s, slices);
        eprintln!("  full_stack_scale/{nodes}: lightweight {light:.0} ns, full {full:.0} ns, ratio {ratio:.2}");
        println!("| {nodes} | {light:.0} | {full:.0} | {ratio:.2} |");
        rows.push((nodes, light, full, ratio));
    }
    println!();

    // Emit the JSON artifact (hand-rolled: serde is stubbed offline).
    let path = std::env::var("BENCH_FULL_STACK_OUT").unwrap_or_else(|_| "BENCH_full_stack.json".to_string());
    let mut json = String::from("{\n  \"unit\": \"ns per node per simulated second\",\n");
    json.push_str(&format!(
        "  \"warmup_sim_seconds\": {warmup_s},\n  \"measured_sim_seconds\": {slice_s},\n  \"rows\": [\n"
    ));
    for (i, (nodes, light, full, ratio)) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"nodes\": {nodes}, \"lightweight_ns_per_node_step\": {light:.1}, \
             \"full_ns_per_node_step\": {full:.1}, \"ratio\": {ratio:.3}}}{}\n",
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&path, &json).expect("write BENCH_full_stack.json");
    eprintln!("  wrote {path}");

    // The E15 acceptance budget: the full stack must stay within 3x the
    // lightweight agent at 2k nodes. Overridable for noisy environments
    // with BENCH_NO_ASSERT=1.
    if std::env::var_os("BENCH_NO_ASSERT").is_none() {
        let at_2k = rows.iter().find(|(n, ..)| *n == 2_000).expect("2k row");
        assert!(
            at_2k.3 <= 3.0,
            "full-stack per-node step cost at 2000 nodes exceeded the 3x budget: ratio {:.2}",
            at_2k.3
        );
    }
}
