//! E4 benchmark: cost of propagating a topology change over several jumps.

use criterion::{criterion_group, criterion_main, Criterion};
use scenarios::experiments::e04_notification_delay;

fn bench_propagation(c: &mut Criterion) {
    let mut group = c.benchmark_group("notification_delay");
    group.sample_size(10);
    group.bench_function("line_2_jumps", |b| b.iter(|| e04_notification_delay(3, 1)));
    group.finish();
}

criterion_group!(benches, bench_propagation);
criterion_main!(benches);
