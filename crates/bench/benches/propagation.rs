//! E4 benchmark: cost of propagating a topology change over several jumps.

use bench::harness::Group;
use scenarios::experiments::e04_notification_delay;

fn main() {
    let mut group = Group::new("notification_delay");
    group.sample_size(10);
    group.bench("line_2_jumps", || e04_notification_delay(3, 1));
    group.finish();
}
